//! The on-disk result store.
//!
//! # Layout
//!
//! ```text
//! <root>/
//!   generation            current generation number (decimal ASCII)
//!   store.lock            maintenance lock (exists only while held)
//!   cell-<16 hex>.res     one published entry per cell fingerprint
//!   cell-<16 hex>.<pid>-<seq>.part   in-flight writes (never read)
//!   quarantine/           damaged entries moved aside, never replayed
//! ```
//!
//! # Entry format
//!
//! Each `.res` file is a `cdp-snap` container whose header fingerprint
//! is the cell key (so a file renamed to the wrong cell is rejected at
//! parse time), with two checksummed sections:
//!
//! * tag [`TAG_META`]: entry version (`u32`) + write generation (`u64`)
//! * tag [`TAG_PAYLOAD`]: opaque payload bytes (the store does not know
//!   what a result *is* — `cdp-sim` owns the payload codec)
//!
//! # Crash safety
//!
//! Publication is write-to-unique-temp + fsync + rename. A kill at any
//! point leaves either the old entry, the new entry, or a stale `.part`
//! that [`ResultStore::open`] sweeps. Concurrent writers of the same
//! cell carry identical bytes (the key is a content fingerprint), so
//! last-rename-wins is safe without locking. The `store.lock` file
//! guards only maintenance (generation bump, GC, fsck repair).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cdp_snap::{SnapReader, SnapWriter};
use cdp_types::{SnapshotError, StoreError};

use crate::io::StoreIo;

/// Section tag for entry metadata (entry version + write generation).
pub const TAG_META: u32 = 1;
/// Section tag for the opaque result payload.
pub const TAG_PAYLOAD: u32 = 2;

/// Version of the *entry envelope* (meta section layout). The payload
/// carries its own version inside, owned by the payload codec.
pub const ENTRY_VERSION: u32 = 1;

/// Extension of published entries.
const RES_EXT: &str = "res";
/// Extension of in-flight temp files.
const PART_EXT: &str = "part";
/// Name of the generation counter file.
const GENERATION_FILE: &str = "generation";
/// Name of the maintenance lock file.
const LOCK_FILE: &str = "store.lock";
/// Name of the quarantine subdirectory.
const QUARANTINE_DIR: &str = "quarantine";

/// A lock file untouched for this long is considered abandoned by a
/// dead process and broken.
const LOCK_STALE_AFTER: std::time::Duration = std::time::Duration::from_secs(300);

/// Live counters for one store handle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries found on disk and decoded successfully.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Damaged entries moved to `quarantine/` (each also counts as a
    /// miss — the caller recomputes).
    pub quarantined: u64,
    /// Writes dropped because the filesystem failed (store stays
    /// correct; the entry is simply not persisted).
    pub write_failures: u64,
}

/// Outcome of [`ResultStore::fsck`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Entries that parsed and checksummed clean.
    pub valid: u64,
    /// Damaged entries, with the path and the typed rejection.
    pub corrupt: Vec<(PathBuf, SnapshotError)>,
    /// Stale `.part` files found (removed when repairing).
    pub stale_parts: u64,
    /// Whether damage was repaired (quarantined / removed) rather than
    /// just reported.
    pub repaired: bool,
}

impl FsckReport {
    /// True when the store has no damage to report.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.stale_parts == 0
    }
}

/// RAII guard for the maintenance lock; removes the lock file on drop.
struct LockGuard<'a> {
    io: &'a dyn StoreIo,
    path: PathBuf,
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        let _ = self.io.remove_file(&self.path);
    }
}

/// A crash-safe, content-addressed result store rooted at one directory.
///
/// Handles are cheap to share (`Arc` internally where it matters); all
/// methods take `&self` and are safe to call from pool workers.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    io: Arc<dyn StoreIo>,
    /// Generation stamped into entries written through this handle.
    generation: u64,
    /// Monotonic suffix making concurrent temp names unique per handle.
    temp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    write_failures: AtomicU64,
}

impl ResultStore {
    /// Opens (creating if needed) the store at `root` on the real
    /// filesystem.
    pub fn open(root: impl Into<PathBuf>) -> Result<ResultStore, StoreError> {
        ResultStore::open_with(root, Arc::new(crate::io::RealIo))
    }

    /// Opens the store through an explicit [`StoreIo`] (fault injection
    /// in tests, the real filesystem in production).
    ///
    /// Opening sweeps stale `.part` files left by killed writers and
    /// bumps the generation counter under the maintenance lock, so
    /// entries written by this handle are distinguishable from older
    /// ones for GC.
    pub fn open_with(
        root: impl Into<PathBuf>,
        io: Arc<dyn StoreIo>,
    ) -> Result<ResultStore, StoreError> {
        let root = root.into();
        io.create_dir_all(&root).map_err(|e| StoreError::Io {
            op: "create_dir_all",
            detail: e.to_string(),
        })?;
        io.create_dir_all(&root.join(QUARANTINE_DIR))
            .map_err(|e| StoreError::Io {
                op: "create_dir_all",
                detail: e.to_string(),
            })?;

        // Satellite 2: a kill between write and rename leaves `.part`
        // litter that would otherwise accumulate forever.
        let _ = clean_stale_parts(io.as_ref(), &root);

        let generation = {
            let _lock = acquire_lock(io.as_ref(), &root)?;
            let gen_path = root.join(GENERATION_FILE);
            let prev = match io.read(&gen_path) {
                Ok(bytes) => std::str::from_utf8(&bytes)
                    .ok()
                    .and_then(|s| s.trim().parse::<u64>().ok())
                    .unwrap_or(0),
                Err(_) => 0,
            };
            let next = prev + 1;
            // A failed generation write is not fatal: the handle still
            // works, GC just sees an older generation number.
            let _ = io.write(&gen_path, next.to_string().as_bytes());
            next
        };

        Ok(ResultStore {
            root,
            io,
            generation,
            temp_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The generation this handle stamps into new entries.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Counters accumulated by this handle.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.root.join(format!("cell-{key:016x}.{RES_EXT}"))
    }

    /// Looks up the payload for `key`.
    ///
    /// Returns the payload bytes on a clean hit and `None` on a miss. A
    /// damaged entry (bad magic, flipped bit, truncation, wrong
    /// fingerprint, future version) is *quarantined*: moved into
    /// `quarantine/`, counted, and reported as a miss so the caller
    /// recomputes. This method never returns corrupt data and never
    /// panics on any file contents.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let path = self.entry_path(key);
        let bytes = match self.io.read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&bytes, key) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Err(e) => {
                self.quarantine(&path, &e);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists `payload` as the entry for `key`.
    ///
    /// Publication is atomic (unique temp + rename); a crash leaves
    /// either the previous entry or the new one, never a torn file
    /// under the published name. Filesystem failures are absorbed: the
    /// write is counted in [`StoreStats::write_failures`] and the store
    /// stays consistent — callers must not treat persistence as
    /// guaranteed.
    pub fn put(&self, key: u64, payload: &[u8]) {
        let mut w = SnapWriter::new(key);
        let generation = self.generation;
        w.section(TAG_META, |e| {
            e.u32(ENTRY_VERSION);
            e.u64(generation);
        });
        w.section(TAG_PAYLOAD, |e| e.bytes(payload));
        let bytes = w.finish();

        let seq = self.temp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.root.join(format!(
            "cell-{key:016x}.{pid}-{seq}.{PART_EXT}",
            pid = std::process::id()
        ));
        if self.io.write(&tmp, &bytes).is_err() {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
            let _ = self.io.remove_file(&tmp);
            return;
        }
        if self.io.rename(&tmp, &self.entry_path(key)).is_err() {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
            let _ = self.io.remove_file(&tmp);
        }
    }

    /// Validates the entry for `key` without touching counters or
    /// quarantine. `Ok(false)` means absent.
    pub fn check(&self, key: u64) -> Result<bool, StoreError> {
        let path = self.entry_path(key);
        let bytes = match self.io.read(&path) {
            Ok(b) => b,
            Err(_) => return Ok(false),
        };
        decode_entry(&bytes, key)?;
        Ok(true)
    }

    /// Moves a damaged entry aside into `quarantine/`, stamping the
    /// filename with a uniquifier so repeated damage never collides.
    /// Losing the race (another process already moved it) is benign.
    fn quarantine(&self, path: &Path, err: &SnapshotError) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_string());
        let seq = self.temp_seq.fetch_add(1, Ordering::Relaxed);
        let dest = self.root.join(QUARANTINE_DIR).join(format!(
            "{name}.{pid}-{seq}.bad",
            pid = std::process::id()
        ));
        eprintln!(
            "warning: result store quarantined {}: {err}",
            path.display()
        );
        if self.io.rename(path, &dest).is_err() {
            // Either another handle won the race or the rename itself
            // failed; make sure the damaged entry cannot be re-read.
            let _ = self.io.remove_file(path);
        }
    }

    /// Removes entries whose write generation is older than
    /// `current - keep` (so `keep = 0` drops everything not written by
    /// the current generation). Runs under the maintenance lock.
    /// Returns the number of entries removed.
    pub fn gc(&self, keep: u64) -> Result<u64, StoreError> {
        let _lock = acquire_lock(self.io.as_ref(), &self.root)?;
        let floor = self.generation.saturating_sub(keep);
        let mut removed = 0;
        for path in self.list_entries()? {
            let old = match self.io.read(&path) {
                Ok(bytes) => match entry_generation(&bytes) {
                    Ok(g) => g < floor,
                    // Damaged entries are GC'd too — they can never be
                    // replayed, only quarantined on the next get.
                    Err(_) => true,
                },
                Err(_) => continue,
            };
            if old && self.io.remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Validates every entry in the store. With `repair`, damaged
    /// entries are quarantined and stale `.part` files removed (under
    /// the maintenance lock); without it the store is only read.
    pub fn fsck(&self, repair: bool) -> Result<FsckReport, StoreError> {
        let _lock = if repair {
            Some(acquire_lock(self.io.as_ref(), &self.root)?)
        } else {
            None
        };
        let mut report = FsckReport {
            repaired: repair,
            ..FsckReport::default()
        };
        let listing = self.io.read_dir(&self.root).map_err(|e| StoreError::Io {
            op: "read_dir",
            detail: e.to_string(),
        })?;
        for path in listing {
            match path.extension().and_then(|e| e.to_str()) {
                Some(RES_EXT) => {}
                Some(PART_EXT) => {
                    report.stale_parts += 1;
                    if repair {
                        let _ = self.io.remove_file(&path);
                    }
                    continue;
                }
                _ => continue,
            }
            let expected = match key_from_path(&path) {
                Some(k) => k,
                None => continue,
            };
            let verdict = match self.io.read(&path) {
                Ok(bytes) => decode_entry(&bytes, expected).map(|_| ()),
                Err(_) => Err(SnapshotError::Truncated {
                    context: "entry file read",
                }),
            };
            match verdict {
                Ok(()) => report.valid += 1,
                Err(e) => {
                    if repair {
                        self.quarantine(&path, &e);
                    }
                    report.corrupt.push((path, e));
                }
            }
        }
        Ok(report)
    }

    fn list_entries(&self) -> Result<Vec<PathBuf>, StoreError> {
        let mut out: Vec<PathBuf> = self
            .io
            .read_dir(&self.root)
            .map_err(|e| StoreError::Io {
                op: "read_dir",
                detail: e.to_string(),
            })?
            .into_iter()
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(RES_EXT))
            .collect();
        out.sort();
        Ok(out)
    }
}

/// Parses an entry, validating magic, version, fingerprint, and both
/// section checksums; returns the payload bytes.
fn decode_entry(bytes: &[u8], expected_key: u64) -> Result<Vec<u8>, SnapshotError> {
    let reader = SnapReader::parse(bytes, Some(expected_key))?;
    let mut meta = reader.section(TAG_META)?;
    let entry_version = meta.u32("store entry version")?;
    if entry_version > ENTRY_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: entry_version,
            supported: ENTRY_VERSION,
        });
    }
    let _generation = meta.u64("store entry generation")?;
    let mut payload = reader.section(TAG_PAYLOAD)?;
    Ok(payload.bytes("store entry payload")?.to_vec())
}

/// Reads just the write generation out of an entry.
fn entry_generation(bytes: &[u8]) -> Result<u64, SnapshotError> {
    let reader = SnapReader::parse(bytes, None)?;
    let mut meta = reader.section(TAG_META)?;
    let _version = meta.u32("store entry version")?;
    meta.u64("store entry generation")
}

/// Recovers the cell key from a published entry filename
/// (`cell-<16 hex>.res`).
fn key_from_path(path: &Path) -> Option<u64> {
    let stem = path.file_stem()?.to_str()?;
    let hex = stem.strip_prefix("cell-")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Removes `.part` litter (files whose final extension is `part`) left
/// in `dir` by writers killed between write and rename. Returns how
/// many were removed. Shared by the store and the checkpoint dirs in
/// `cdp-sim` (satellite 2); never touches published files.
pub fn clean_stale_parts(io: &dyn StoreIo, dir: &Path) -> u64 {
    let mut removed = 0;
    let Ok(listing) = io.read_dir(dir) else {
        return 0;
    };
    for path in listing {
        if path.extension().and_then(|e| e.to_str()) == Some(PART_EXT)
            && io.remove_file(&path).is_ok()
        {
            removed += 1;
        }
    }
    removed
}

/// Takes the maintenance lock, breaking it if stale (mtime older than
/// [`LOCK_STALE_AFTER`] — the owner died without cleanup).
fn acquire_lock<'a>(io: &'a dyn StoreIo, root: &Path) -> Result<LockGuard<'a>, StoreError> {
    let path = root.join(LOCK_FILE);
    let body = format!("pid {}", std::process::id());
    for _ in 0..2 {
        match io.create_new(&path, body.as_bytes()) {
            Ok(true) => {
                return Ok(LockGuard {
                    io,
                    path,
                })
            }
            Ok(false) => {
                // Held. Break it only if abandoned (stale mtime).
                let stale = std::fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age > LOCK_STALE_AFTER);
                if stale {
                    let _ = io.remove_file(&path);
                    continue;
                }
                let owner = io
                    .read(&path)
                    .ok()
                    .and_then(|b| String::from_utf8(b).ok())
                    .unwrap_or_else(|| "unknown".to_string());
                return Err(StoreError::Locked { owner });
            }
            Err(e) => {
                return Err(StoreError::Io {
                    op: "lock create_new",
                    detail: e.to_string(),
                })
            }
        }
    }
    Err(StoreError::Locked {
        owner: "unknown (stale lock reappeared)".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RealIo;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cdp-store-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trip() {
        let dir = scratch("rt");
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.get(0xABCD), None);
        store.put(0xABCD, b"result bytes");
        assert_eq!(store.get(0xABCD).as_deref(), Some(&b"result bytes"[..]));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.quarantined, s.write_failures), (1, 1, 0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_survive_reopen_and_generation_bumps() {
        let dir = scratch("gen");
        let g1 = {
            let store = ResultStore::open(&dir).unwrap();
            store.put(7, b"persisted");
            store.generation()
        };
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.generation(), g1 + 1);
        assert_eq!(store.get(7).as_deref(), Some(&b"persisted"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_is_quarantined_not_replayed() {
        let dir = scratch("wrongkey");
        let store = ResultStore::open(&dir).unwrap();
        store.put(1, b"belongs to key 1");
        // Republish key 1's bytes under key 2's name, as a bad repair
        // script might.
        let bytes = std::fs::read(store.entry_path(1)).unwrap();
        std::fs::write(store.entry_path(2), &bytes).unwrap();
        assert_eq!(store.get(2), None, "fingerprint mismatch must not replay");
        assert_eq!(store.stats().quarantined, 1);
        assert!(!store.root().join("cell-0000000000000002.res").exists());
        // Quarantine kept the evidence.
        let q = RealIo.read_dir(&store.root().join(QUARANTINE_DIR)).unwrap();
        assert_eq!(q.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_drops_old_generations() {
        let dir = scratch("gc");
        {
            let store = ResultStore::open(&dir).unwrap(); // generation 1
            store.put(10, b"old");
        }
        let store = ResultStore::open(&dir).unwrap(); // generation 2
        store.put(11, b"new");
        assert_eq!(store.gc(1).unwrap(), 0, "keep=1 preserves generation 1");
        assert_eq!(store.get(10).as_deref(), Some(&b"old"[..]));
        assert_eq!(store.gc(0).unwrap(), 1, "keep=0 drops generation 1");
        assert_eq!(store.get(10), None);
        assert_eq!(store.get(11).as_deref(), Some(&b"new"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_parts() {
        let dir = scratch("parts");
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(3, b"keep me");
        }
        std::fs::write(dir.join("cell-0000000000000003.999-0.part"), b"torn").unwrap();
        let store = ResultStore::open(&dir).unwrap();
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("part"))
            .collect();
        assert!(litter.is_empty(), "open must sweep .part litter");
        assert_eq!(store.get(3).as_deref(), Some(&b"keep me"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_reports_and_repairs() {
        let dir = scratch("fsck");
        let store = ResultStore::open(&dir).unwrap();
        store.put(1, b"good");
        store.put(2, b"will be damaged");
        // Flip a byte in entry 2's payload region.
        let p2 = store.entry_path(2);
        let mut bytes = std::fs::read(&p2).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p2, &bytes).unwrap();
        std::fs::write(dir.join("cell-0000000000000009.1-0.part"), b"x").unwrap();

        let report = store.fsck(false).unwrap();
        assert_eq!(report.valid, 1);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.stale_parts, 1);
        assert!(!report.is_clean());
        assert!(p2.exists(), "dry run must not move files");

        let report = store.fsck(true).unwrap();
        assert_eq!(report.corrupt.len(), 1);
        assert!(!p2.exists(), "repair quarantines the damaged entry");

        let report = store.fsck(false).unwrap();
        assert!(report.is_clean(), "store is clean after repair: {report:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn maintenance_lock_excludes_and_releases() {
        let dir = scratch("lock");
        let store = ResultStore::open(&dir).unwrap();
        let io = RealIo;
        let guard = acquire_lock(&io, store.root()).unwrap();
        match store.gc(0) {
            Err(StoreError::Locked { owner }) => {
                assert!(owner.contains("pid"), "owner recorded: {owner}")
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(guard);
        assert!(store.gc(0).is_ok(), "lock released on drop");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_parses_from_entry_name() {
        assert_eq!(
            key_from_path(Path::new("/x/cell-00000000000000ff.res")),
            Some(0xFF)
        );
        assert_eq!(key_from_path(Path::new("/x/cell-zz.res")), None);
        assert_eq!(key_from_path(Path::new("/x/generation")), None);
    }
}
