//! `store-fsck` — validate (and optionally repair) a result store
//! directory.
//!
//! ```text
//! store-fsck <dir> [--repair] [--gc KEEP]
//! ```
//!
//! Walks every published entry in the store, checking magic, version,
//! fingerprint-vs-filename, and section checksums. Without `--repair`
//! the store is only read. With `--repair`, damaged entries are moved
//! into `quarantine/` and stale `.part` litter is removed; `--gc KEEP`
//! additionally drops entries more than `KEEP` generations old.
//!
//! Exit status: `0` clean (or fully repaired), `1` damage found and not
//! repaired, `2` usage or store-level failure (bad arguments, lock held,
//! unreadable directory).

use std::process::ExitCode;

use cdp_store::ResultStore;

fn usage() -> ExitCode {
    eprintln!("usage: store-fsck <dir> [--repair] [--gc KEEP]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut dir: Option<String> = None;
    let mut repair = false;
    let mut gc_keep: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--repair" => repair = true,
            "--gc" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                gc_keep = Some(v);
            }
            "--help" | "-h" => {
                println!("usage: store-fsck <dir> [--repair] [--gc KEEP]");
                return ExitCode::SUCCESS;
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(other.to_string());
            }
            _ => return usage(),
        }
    }
    let Some(dir) = dir else { return usage() };
    if !std::path::Path::new(&dir).is_dir() {
        eprintln!("store-fsck: {dir}: not a directory");
        return ExitCode::from(2);
    }

    let store = match ResultStore::open(&dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("store-fsck: cannot open {dir}: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match store.fsck(repair) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("store-fsck: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "store-fsck: {dir}: {} valid, {} corrupt, {} stale .part{}",
        report.valid,
        report.corrupt.len(),
        report.stale_parts,
        if repair { " (repaired)" } else { "" }
    );
    for (path, err) in &report.corrupt {
        println!("  corrupt: {}: {err}", path.display());
    }

    if let Some(keep) = gc_keep {
        match store.gc(keep) {
            Ok(removed) => println!("store-fsck: gc removed {removed} old entries"),
            Err(e) => {
                eprintln!("store-fsck: gc failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if report.is_clean() || repair {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
