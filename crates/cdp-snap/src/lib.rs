//! Checkpoint snapshot codec (DESIGN.md §12).
//!
//! A snapshot is a single byte blob:
//!
//! ```text
//! magic     8 bytes   b"CDPSNAP\0"
//! version   u32 LE    format version (this build writes VERSION)
//! run fp    u64 LE    FNV-1a fingerprint of the run being checkpointed
//!                     (config + workload identity + fault plan)
//! count     u32 LE    number of sections (so truncation at a section
//!                     boundary is still detected)
//! sections  repeated  [tag u32][len u64][payload len bytes][checksum u64]
//!                     checksum = fnv1a(tag ∥ len ∥ payload), so damage to
//!                     the framing is caught as surely as damage to the data
//! ```
//!
//! Everything inside a payload is written with [`Enc`] (little-endian,
//! fixed-width, length-prefixed collections) and read back with [`Dec`],
//! whose every accessor returns a typed [`SnapshotError`] instead of
//! panicking. The resume contract rests on this codec being *defensive*:
//! a truncated file, a flipped byte, a fingerprint from a different run,
//! or a future version number must all be rejected before any simulator
//! state is touched.

#![warn(missing_docs)]

use cdp_types::SnapshotError;

/// Magic bytes every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"CDPSNAP\0";

/// Format version this build writes (and the highest it reads).
/// Version 2 appended the core's feed kind (and, for streaming feeds,
/// the uop window + generation cursor) to the core section.
pub const VERSION: u32 = 2;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a (same function the section
/// checksums use).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Streaming 64-bit FNV-1a hasher, for fingerprinting state that is
/// inconvenient to materialize as one byte slice (frame tables, traces).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u32` as 4 little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Little-endian binary encoder for section payloads.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Enc::default()
    }

    /// An encoder that appends to `buf`'s existing contents. Lets a
    /// caller encode a payload directly into an arena it owns (see
    /// [`SnapWriter::section`]) instead of paying a fresh allocation and
    /// a copy per payload.
    #[must_use]
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Enc { buf }
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128` as two little-endian `u64` halves (low, high).
    pub fn u128(&mut self, v: u128) {
        self.u64(v as u64);
        self.u64((v >> 64) as u64);
    }

    /// Appends a `usize` widened to `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` by bit pattern (round-trips exactly).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends a collection length prefix (`u64`); the caller then
    /// appends that many elements.
    pub fn seq_len(&mut self, len: usize) {
        self.usize(len);
    }
}

/// Little-endian binary decoder over a section payload. Every accessor
/// is bounds-checked and returns [`SnapshotError::Truncated`] with the
/// caller-supplied context when the bytes run out.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `data`.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when every byte has been consumed (restores check this to
    /// catch trailing garbage).
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated { context });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a bool byte, rejecting anything but 0 or 1.
    pub fn bool(&mut self, context: &'static str) -> Result<bool, SnapshotError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt { context }),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self, context: &'static str) -> Result<i64, SnapshotError> {
        let b = self.take(8, context)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a `u128` written by [`Enc::u128`].
    pub fn u128(&mut self, context: &'static str) -> Result<u128, SnapshotError> {
        let lo = self.u64(context)?;
        let hi = self.u64(context)?;
        Ok(u128::from(lo) | (u128::from(hi) << 64))
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting overflow.
    pub fn usize(&mut self, context: &'static str) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64(context)?).map_err(|_| SnapshotError::Corrupt { context })
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let len = self.usize(context)?;
        self.take(len, context)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.bytes(context)?).map_err(|_| SnapshotError::Corrupt { context })
    }

    /// Reads a collection length prefix, rejecting lengths that could
    /// not possibly fit in the remaining bytes (`min_elem_bytes` is the
    /// smallest possible encoded element). This keeps a corrupted length
    /// from turning into a huge allocation.
    pub fn seq_len(
        &mut self,
        min_elem_bytes: usize,
        context: &'static str,
    ) -> Result<usize, SnapshotError> {
        let len = self.usize(context)?;
        if len.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(SnapshotError::Corrupt { context });
        }
        Ok(len)
    }
}

/// Writes a snapshot: header first, then checksummed sections.
#[derive(Debug)]
pub struct SnapWriter {
    buf: Vec<u8>,
    count: u32,
}

/// Byte offset of the section-count field within the header.
const COUNT_OFFSET: usize = 8 + 4 + 8;

impl SnapWriter {
    /// Starts a snapshot for the run identified by `fingerprint`.
    #[must_use]
    pub fn new(fingerprint: u64) -> Self {
        SnapWriter::new_in(fingerprint, Vec::with_capacity(4096))
    }

    /// Starts a snapshot in a caller-supplied buffer, clearing it first
    /// but keeping its capacity. A periodic checkpointer that reuses one
    /// buffer across snapshots allocates only while the snapshot is still
    /// growing toward its steady-state size. The output bytes are
    /// identical to [`SnapWriter::new`].
    #[must_use]
    pub fn new_in(fingerprint: u64, mut buf: Vec<u8>) -> Self {
        buf.clear();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&fingerprint.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // section count, patched in finish()
        SnapWriter { buf, count: 0 }
    }

    /// Appends one section: the closure fills the payload, the writer
    /// adds the tag, length prefix, and FNV-1a checksum.
    ///
    /// The payload is encoded in place in the snapshot buffer (the
    /// encoder the closure sees is a view over it, with the length
    /// prefix patched afterwards), so a section costs no allocation of
    /// its own once the buffer has reached steady-state capacity.
    pub fn section(&mut self, tag: u32, fill: impl FnOnce(&mut Enc)) {
        self.buf.extend_from_slice(&tag.to_le_bytes());
        let len_at = self.buf.len();
        self.buf.extend_from_slice(&0u64.to_le_bytes()); // patched below
        let payload_at = self.buf.len();
        let mut enc = Enc::from_vec(std::mem::take(&mut self.buf));
        fill(&mut enc);
        self.buf = enc.into_bytes();
        let payload_len = (self.buf.len() - payload_at) as u64;
        self.buf[len_at..len_at + 8].copy_from_slice(&payload_len.to_le_bytes());
        let mut sum = Fnv1a::new();
        sum.write_u32(tag);
        sum.write_u64(payload_len);
        sum.write(&self.buf[payload_at..]);
        let digest = sum.finish();
        self.buf.extend_from_slice(&digest.to_le_bytes());
        self.count += 1;
    }

    /// The finished snapshot bytes.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[COUNT_OFFSET..COUNT_OFFSET + 4].copy_from_slice(&self.count.to_le_bytes());
        self.buf
    }
}

/// Parses and validates a snapshot: header checks up front, checksum
/// checks per section, typed errors throughout.
#[derive(Debug)]
pub struct SnapReader<'a> {
    fingerprint: u64,
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> SnapReader<'a> {
    /// Parses `data`, verifying magic, version, every section's framing
    /// and checksum, and — when `expected_fingerprint` is given — the
    /// header fingerprint.
    pub fn parse(
        data: &'a [u8],
        expected_fingerprint: Option<u64>,
    ) -> Result<SnapReader<'a>, SnapshotError> {
        let mut d = Dec::new(data);
        let magic = d.take(MAGIC.len(), "magic")?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = d.u32("version")?;
        if version > VERSION || version == 0 {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let fingerprint = d.u64("fingerprint")?;
        if let Some(expected) = expected_fingerprint {
            if fingerprint != expected {
                return Err(SnapshotError::FingerprintMismatch {
                    expected,
                    found: fingerprint,
                });
            }
        }
        let count = d.u32("section count")?;
        let mut sections = Vec::new();
        for _ in 0..count {
            let tag = d.u32("section tag")?;
            let len = d.usize("section length")?;
            let payload = d.take(len, "section payload")?;
            let stored = d.u64("section checksum")?;
            let mut sum = Fnv1a::new();
            sum.write_u32(tag);
            sum.write_u64(len as u64);
            sum.write(payload);
            if sum.finish() != stored {
                return Err(SnapshotError::ChecksumMismatch { tag });
            }
            sections.push((tag, payload));
        }
        if !d.is_exhausted() {
            return Err(SnapshotError::Corrupt {
                context: "trailing bytes after final section",
            });
        }
        Ok(SnapReader {
            fingerprint,
            sections,
        })
    }

    /// The run fingerprint stored in the header.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// A decoder over the payload of section `tag`, or
    /// [`SnapshotError::MissingSection`].
    pub fn section(&self, tag: u32) -> Result<Dec<'a>, SnapshotError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, payload)| Dec::new(payload))
            .ok_or(SnapshotError::MissingSection { tag })
    }

    /// True when section `tag` is present.
    #[must_use]
    pub fn has_section(&self, tag: u32) -> bool {
        self.sections.iter().any(|(t, _)| *t == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapWriter::new(0xfeed_f00d);
        w.section(1, |e| {
            e.u64(42);
            e.str("hello");
            e.i64(-7);
            e.u128(u128::MAX - 1);
            e.bool(true);
        });
        w.section(2, |e| e.bytes(&[1, 2, 3]));
        w.finish()
    }

    #[test]
    fn roundtrip() {
        let bytes = sample();
        let r = SnapReader::parse(&bytes, Some(0xfeed_f00d)).unwrap();
        assert_eq!(r.fingerprint(), 0xfeed_f00d);
        let mut d = r.section(1).unwrap();
        assert_eq!(d.u64("a").unwrap(), 42);
        assert_eq!(d.str("b").unwrap(), "hello");
        assert_eq!(d.i64("c").unwrap(), -7);
        assert_eq!(d.u128("d").unwrap(), u128::MAX - 1);
        assert!(d.bool("e").unwrap());
        assert!(d.is_exhausted());
        let mut d2 = r.section(2).unwrap();
        assert_eq!(d2.bytes("p").unwrap(), &[1, 2, 3]);
        assert!(!r.has_section(3));
        assert!(matches!(
            r.section(3),
            Err(SnapshotError::MissingSection { tag: 3 })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample();
        bytes[0] ^= 0xff;
        assert_eq!(
            SnapReader::parse(&bytes, None).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
        assert_eq!(
            SnapReader::parse(&bytes, None).unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: VERSION + 1,
                supported: VERSION
            }
        );
    }

    #[test]
    fn fingerprint_mismatch_rejected() {
        let bytes = sample();
        assert_eq!(
            SnapReader::parse(&bytes, Some(1)).unwrap_err(),
            SnapshotError::FingerprintMismatch {
                expected: 1,
                found: 0xfeed_f00d
            }
        );
        // Without an expectation the header fingerprint is just reported.
        assert!(SnapReader::parse(&bytes, None).is_ok());
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let bytes = sample();
        for n in 0..bytes.len() {
            let err = SnapReader::parse(&bytes[..n], Some(0xfeed_f00d))
                .expect_err("every prefix must be rejected");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::BadMagic
                        | SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::Corrupt { .. }
                ),
                "prefix {n}: {err:?}"
            );
        }
    }

    #[test]
    fn every_flipped_payload_byte_fails_a_checksum() {
        let bytes = sample();
        // Flip each byte past the header; the damage must surface as a
        // checksum, framing, or header error — never a clean parse that
        // could silently feed wrong state to a resume.
        let header = MAGIC.len() + 4 + 8;
        for i in header..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x01;
            assert!(
                SnapReader::parse(&b, Some(0xfeed_f00d)).is_err(),
                "flipping byte {i} went undetected"
            );
        }
    }

    #[test]
    fn seq_len_rejects_absurd_lengths() {
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(
            d.seq_len(8, "table"),
            Err(SnapshotError::Corrupt { context: "table" })
        ));
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a 64-bit of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"ab");
        assert_eq!(h.finish(), fnv1a(b"ab"));
    }
}
