//! Figures 3–4: prefetch chaining and path reinforcement, replayed on a
//! five-node list (A → B → C → D → E, one node per cache line) exactly as
//! in the paper's worked example.
//!
//! Left panel (Figure 3): a demand miss on A starts a chain that reaches
//! depth 3 (the threshold) and stops — line D is fetched but not scanned.
//! Right panel: a later demand *hit* on B (a prefetched line) promotes its
//! stored depth to 0, rescans it, and the chain extends to E.

use cdp_core::MemoryModel;
use cdp_mem::AddressSpace;
use cdp_prefetch::ContentStats;
use cdp_sim::hierarchy::Hierarchy;
use cdp_sim::MemStats;
use cdp_types::{AccessKind, ContentConfig, SystemConfig, VirtAddr};

/// Results of the scripted walk-through.
#[derive(Clone, Debug)]
pub struct Walkthrough {
    /// Content prefetches issued by the initial demand miss on A
    /// (the chain B, C, D — depth threshold 3).
    pub chain_after_miss: u64,
    /// Rescans triggered by the later demand hit on B.
    pub rescans_after_hit: u64,
    /// Content prefetches issued in total once reinforcement extended the
    /// chain (now including E).
    pub chain_after_hit: u64,
    /// Depth promotions observed.
    pub promotions: u64,
    rendered: String,
}

impl Walkthrough {
    /// The printable narration.
    pub fn render(&self) -> &str {
        &self.rendered
    }
}

/// Runs the Figure 3/4 script and returns the observed chain behavior.
pub fn run() -> Walkthrough {
    // Five nodes, one per line, each line's first word pointing at the
    // next node (E's pointer targets an unmapped sixth node so the chain
    // has a natural end).
    let mut space = AddressSpace::new();
    let lines: Vec<VirtAddr> = (0..5).map(|i| VirtAddr(0x1000_0000 + i * 0x100)).collect();
    for i in 0..5 {
        let next = if i + 1 < 5 { lines[i + 1].0 } else { 0 };
        space.write_u32(lines[i], next);
    }

    let mut cfg = SystemConfig::asplos2002();
    cfg.prefetchers.content = Some(ContentConfig {
        next_lines: 0,
        prev_lines: 0,
        ..ContentConfig::tuned()
    });
    let mut h = Hierarchy::new(cfg, &space);
    let mut out = String::new();
    out.push_str("Figures 3-4: prefetch chaining and path reinforcement\n\n");
    out.push_str("PREFETCH CHAINING (demand miss on A, depth threshold 3):\n");

    // Step 1: demand miss on A. Drain far in the future so the chain runs.
    let t = h.access(0x40, lines[0], AccessKind::Load, 0);
    let _ = h.access(0x44, lines[0], AccessKind::Load, t + 100_000);
    let after_miss: MemStats = *h.stats();
    let cs: ContentStats = h.content_stats().expect("content enabled");
    out.push_str(&format!(
        "  A scanned on demand fill; chain issued {} prefetches (B, C, D)\n",
        after_miss.content.issued
    ));
    out.push_str(&format!(
        "  chain terminated at the depth threshold: {} fill(s) left unscanned\n",
        cs.depth_terminations
    ));

    // Step 2: demand hit on B (resident, stored depth 1) -> promotion to
    // depth 0, rescan, chain extends to E.
    let t2 = h.access(0x48, lines[1], AccessKind::Load, t + 200_000);
    let _ = h.access(0x4c, lines[1], AccessKind::Load, t2 + 100_000);
    let after_hit: MemStats = *h.stats();
    out.push_str("\nPATH REINFORCEMENT (demand hit on prefetched B):\n");
    out.push_str(&format!(
        "  stored depth promoted ({} promotion(s)); B rescanned ({} rescan(s))\n",
        after_hit.depth_promotions, after_hit.rescans
    ));
    out.push_str(&format!(
        "  chain extended: {} content prefetches total (E now fetched)\n",
        after_hit.content.issued
    ));

    Walkthrough {
        chain_after_miss: after_miss.content.issued,
        rescans_after_hit: after_hit.rescans,
        chain_after_hit: after_hit.content.issued,
        promotions: after_hit.depth_promotions,
        rendered: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_reaches_depth_threshold_then_extends() {
        let w = run();
        // Figure 3 left: B (d1), C (d2), D (d3) fetched; E not yet.
        assert_eq!(w.chain_after_miss, 3, "chain B,C,D");
        // Figure 3 right: the hit on B re-energizes the chain to E.
        assert!(w.rescans_after_hit >= 1, "B rescanned");
        assert!(w.promotions >= 1);
        assert!(
            w.chain_after_hit > w.chain_after_miss,
            "chain extended past D"
        );
        assert!(w.render().contains("PATH REINFORCEMENT"));
    }
}
