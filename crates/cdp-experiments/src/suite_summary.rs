//! Suite summary: the headline comparison behind the paper's abstract —
//! per-benchmark baseline MPTU, IPC, and content-prefetcher speedup, plus
//! the stateless (no-reinforcement) variant's average.
//!
//! The paper reports 11.3% average speedup with no additional processor
//! state, rising to 12.6% with the <½% reinforcement bits (abstract,
//! §4.2.1).

use cdp_sim::{speedup, Pool};
use cdp_types::{ContentConfig, SystemConfig};
use cdp_workloads::suite::Benchmark;

use crate::common::{
    ascii_bar, failure_note, mean_if_complete, opt_cell, render_table, run_grid_cells,
    CellFailure, ExpScale, GAP, WorkloadSet,
};

/// One benchmark's summary row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Baseline (stride-only) L2 MPTU; `None` if the baseline cell
    /// failed.
    pub mptu: Option<f64>,
    /// Baseline IPC; `None` if the baseline cell failed.
    pub ipc: Option<f64>,
    /// Tuned content prefetcher speedup; `None` if a contributing cell
    /// failed.
    pub speedup_reinf: Option<f64>,
    /// Stateless (no reinforcement bits) content prefetcher speedup;
    /// `None` if a contributing cell failed.
    pub speedup_stateless: Option<f64>,
}

/// The suite summary.
#[derive(Clone, Debug)]
pub struct SuiteSummary {
    /// One row per benchmark.
    pub rows: Vec<Row>,
    /// Average tuned speedup (paper: 1.126); `None` on a partial suite.
    pub average_reinf: Option<f64>,
    /// Average stateless speedup (paper: 1.113); `None` on a partial
    /// suite.
    pub average_stateless: Option<f64>,
    /// Cells that failed (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

impl SuiteSummary {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Suite summary: content-prefetcher speedups over the stride baseline\n\n",
        );
        let max = self
            .rows
            .iter()
            .filter_map(|r| r.speedup_reinf)
            .fold(1.0, f64::max);
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    opt_cell(r.mptu, |m| format!("{m:.2}")),
                    opt_cell(r.ipc, |i| format!("{i:.3}")),
                    opt_cell(r.speedup_stateless, |s| format!("{s:.3}")),
                    opt_cell(r.speedup_reinf, |s| format!("{s:.3}")),
                    match r.speedup_reinf {
                        Some(s) => {
                            format!("|{}|", ascii_bar(s - 1.0, (max - 1.0).max(0.01), 24))
                        }
                        None => GAP.to_string(),
                    },
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["Benchmark", "MPTU", "IPC", "stateless", "reinforced", "gain"],
            &rows,
        ));
        match (self.average_stateless, self.average_reinf) {
            (Some(stateless), Some(reinf)) => out.push_str(&format!(
                "\naverage: stateless {:.3} ({:+.1}%), reinforced {:.3} ({:+.1}%)\n",
                stateless,
                (stateless - 1.0) * 100.0,
                reinf,
                (reinf - 1.0) * 100.0
            )),
            _ => out.push_str(&format!(
                "\naverage: stateless {GAP}, reinforced {GAP} (partial suite)\n"
            )),
        }
        out.push_str("paper:   stateless 1.113 (+11.3%), reinforced 1.126 (+12.6%)\n");
        out.push_str(&failure_note(&self.failures));
        out
    }
}

/// Runs the summary across the full suite: three configurations per
/// benchmark, every cell an independent pool job.
pub fn run(scale: ExpScale, pool: &Pool) -> SuiteSummary {
    let s = scale.scale();
    let base_cfg = SystemConfig::asplos2002();
    let reinf_cfg = SystemConfig::with_content();
    let mut stateless_cfg = SystemConfig::asplos2002();
    stateless_cfg.prefetchers.content = Some(ContentConfig::stateless());
    let ws = WorkloadSet::default();
    let mut grid = Vec::new();
    for b in Benchmark::all() {
        grid.push((format!("base/{}", b.name()), base_cfg.clone(), b));
        grid.push((format!("reinf/{}", b.name()), reinf_cfg.clone(), b));
        grid.push((format!("stateless/{}", b.name()), stateless_cfg.clone(), b));
    }
    let (runs, failures) = run_grid_cells(pool, &ws, s, grid);
    let mut rows = Vec::new();
    for (b, trio) in Benchmark::all().into_iter().zip(runs.chunks(3)) {
        let (base, reinf, stateless) = (&trio[0], &trio[1], &trio[2]);
        rows.push(Row {
            name: b.name().to_string(),
            mptu: base.as_ref().map(cdp_sim::RunStats::mptu),
            ipc: base.as_ref().map(cdp_sim::RunStats::ipc),
            speedup_reinf: match (base, reinf) {
                (Some(base), Some(reinf)) => Some(speedup(base, reinf)),
                _ => None,
            },
            speedup_stateless: match (base, stateless) {
                (Some(base), Some(stateless)) => Some(speedup(base, stateless)),
                _ => None,
            },
        });
    }
    SuiteSummary {
        average_reinf: mean_if_complete(
            &rows.iter().map(|r| r.speedup_reinf).collect::<Vec<_>>(),
        ),
        average_stateless: mean_if_complete(
            &rows.iter().map(|r| r.speedup_stateless).collect::<Vec<_>>(),
        ),
        rows,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_has_all_benchmarks_and_sane_averages() {
        let s = run(ExpScale::Smoke, &Pool::new(2));
        assert_eq!(s.rows.len(), 15);
        assert!(s.failures.is_empty());
        let reinf = s.average_reinf.expect("healthy run");
        let stateless = s.average_stateless.expect("healthy run");
        assert!(reinf > 0.9 && reinf < 3.0);
        assert!(stateless > 0.9 && stateless < 3.0);
        assert!(s.render().contains("reinforced"));
    }
}
