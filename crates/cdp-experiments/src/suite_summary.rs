//! Suite summary: the headline comparison behind the paper's abstract —
//! per-benchmark baseline MPTU, IPC, and content-prefetcher speedup, plus
//! the stateless (no-reinforcement) variant's average.
//!
//! The paper reports 11.3% average speedup with no additional processor
//! state, rising to 12.6% with the <½% reinforcement bits (abstract,
//! §4.2.1).

use cdp_sim::metrics::mean;
use cdp_sim::{speedup, Pool};
use cdp_types::{ContentConfig, SystemConfig};
use cdp_workloads::suite::Benchmark;

use crate::common::{ascii_bar, render_table, run_grid, ExpScale, WorkloadSet};

/// One benchmark's summary row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Baseline (stride-only) L2 MPTU.
    pub mptu: f64,
    /// Baseline IPC.
    pub ipc: f64,
    /// Tuned content prefetcher speedup.
    pub speedup_reinf: f64,
    /// Stateless (no reinforcement bits) content prefetcher speedup.
    pub speedup_stateless: f64,
}

/// The suite summary.
#[derive(Clone, Debug)]
pub struct SuiteSummary {
    /// One row per benchmark.
    pub rows: Vec<Row>,
    /// Average tuned speedup (paper: 1.126).
    pub average_reinf: f64,
    /// Average stateless speedup (paper: 1.113).
    pub average_stateless: f64,
}

impl SuiteSummary {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Suite summary: content-prefetcher speedups over the stride baseline\n\n",
        );
        let max = self
            .rows
            .iter()
            .map(|r| r.speedup_reinf)
            .fold(1.0, f64::max);
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.2}", r.mptu),
                    format!("{:.3}", r.ipc),
                    format!("{:.3}", r.speedup_stateless),
                    format!("{:.3}", r.speedup_reinf),
                    format!("|{}|", ascii_bar(r.speedup_reinf - 1.0, (max - 1.0).max(0.01), 24)),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["Benchmark", "MPTU", "IPC", "stateless", "reinforced", "gain"],
            &rows,
        ));
        out.push_str(&format!(
            "\naverage: stateless {:.3} ({:+.1}%), reinforced {:.3} ({:+.1}%)\n",
            self.average_stateless,
            (self.average_stateless - 1.0) * 100.0,
            self.average_reinf,
            (self.average_reinf - 1.0) * 100.0
        ));
        out.push_str("paper:   stateless 1.113 (+11.3%), reinforced 1.126 (+12.6%)\n");
        out
    }
}

/// Runs the summary across the full suite: three configurations per
/// benchmark, every cell an independent pool job.
pub fn run(scale: ExpScale, pool: &Pool) -> SuiteSummary {
    let s = scale.scale();
    let base_cfg = SystemConfig::asplos2002();
    let reinf_cfg = SystemConfig::with_content();
    let mut stateless_cfg = SystemConfig::asplos2002();
    stateless_cfg.prefetchers.content = Some(ContentConfig::stateless());
    let ws = WorkloadSet::default();
    let mut grid = Vec::new();
    for b in Benchmark::all() {
        grid.push((format!("base/{}", b.name()), base_cfg.clone(), b));
        grid.push((format!("reinf/{}", b.name()), reinf_cfg.clone(), b));
        grid.push((format!("stateless/{}", b.name()), stateless_cfg.clone(), b));
    }
    let runs = run_grid(pool, &ws, s, grid);
    let mut rows = Vec::new();
    for (b, trio) in Benchmark::all().into_iter().zip(runs.chunks(3)) {
        let (base, reinf, stateless) = (&trio[0], &trio[1], &trio[2]);
        rows.push(Row {
            name: b.name().to_string(),
            mptu: base.mptu(),
            ipc: base.ipc(),
            speedup_reinf: speedup(base, reinf),
            speedup_stateless: speedup(base, stateless),
        });
    }
    SuiteSummary {
        average_reinf: mean(&rows.iter().map(|r| r.speedup_reinf).collect::<Vec<_>>()),
        average_stateless: mean(&rows.iter().map(|r| r.speedup_stateless).collect::<Vec<_>>()),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_has_all_benchmarks_and_sane_averages() {
        let s = run(ExpScale::Smoke, &Pool::new(2));
        assert_eq!(s.rows.len(), 15);
        assert!(s.average_reinf > 0.9 && s.average_reinf < 3.0);
        assert!(s.average_stateless > 0.9 && s.average_stateless < 3.0);
        assert!(s.render().contains("reinforced"));
    }
}
