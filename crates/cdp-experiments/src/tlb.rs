//! §4.2.2: contribution of TLB prefetching.
//!
//! The data TLB is repeatedly doubled from 64 to 1024 entries. If a large
//! share of the content prefetcher's gain came from its speculative page
//! walks warming the TLB, bigger TLBs would erase the gain. The paper
//! observes only 12.6% → 12.3%: TLB prefetching is a minor contributor,
//! and no TLB-pollution signature appears either.

use cdp_sim::runner::pointer_subset;
use cdp_sim::{speedup, Pool};
use cdp_types::SystemConfig;

use crate::common::{
    failure_note, mean_if_complete, opt_cell, render_table, run_grid_cells, CellFailure, ExpScale,
    WorkloadSet,
};

/// One TLB size's result.
#[derive(Clone, Debug)]
pub struct Point {
    /// DTLB entries.
    pub entries: usize,
    /// Suite-average content-prefetcher speedup at this TLB size
    /// (baseline re-measured with the same TLB); `None` when any
    /// contributing cell failed.
    pub speedup: Option<f64>,
}

/// The sweep.
#[derive(Clone, Debug)]
pub struct TlbSweep {
    /// 64, 128, 256, 512, 1024 entries.
    pub points: Vec<Point>,
    /// Cells that failed (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

impl TlbSweep {
    /// Total spread between the largest and smallest speedup across the
    /// sizes that completed.
    pub fn spread(&self) -> f64 {
        let sps: Vec<f64> = self.points.iter().filter_map(|p| p.speedup).collect();
        let max = sps.iter().copied().fold(0.0, f64::max);
        let min = sps.iter().copied().fold(f64::INFINITY, f64::min);
        if sps.is_empty() {
            0.0
        } else {
            max - min
        }
    }

    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Section 4.2.2: content-prefetcher speedup vs data-TLB size\n\n",
        );
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.entries.to_string(),
                    opt_cell(p.speedup, |s| format!("{s:.3}")),
                    opt_cell(p.speedup, |s| format!("{:+.1}%", (s - 1.0) * 100.0)),
                ]
            })
            .collect();
        out.push_str(&render_table(&["DTLB entries", "speedup", "gain"], &rows));
        out.push_str(&format!(
            "\nspread across TLB sizes: {:.1} points (paper: 12.6% -> 12.3%, i.e. ~0.3)\n",
            self.spread() * 100.0
        ));
        out.push_str(&failure_note(&self.failures));
        out
    }
}

/// Runs the DTLB sweep on the pointer subset as one flat pooled grid
/// (every TLB size x benchmark x {baseline, CDP} cell independently).
pub fn run(scale: ExpScale, pool: &Pool) -> TlbSweep {
    let s = scale.scale();
    let benches = pointer_subset();
    let sizes = [64usize, 128, 256, 512, 1024];
    let ws = WorkloadSet::default();
    let mut grid = Vec::new();
    for &entries in &sizes {
        let mut base_cfg = SystemConfig::asplos2002();
        base_cfg.dtlb.entries = entries;
        let mut cdp_cfg = SystemConfig::with_content();
        cdp_cfg.dtlb.entries = entries;
        for &b in &benches {
            grid.push((format!("tlb{entries}-base/{}", b.name()), base_cfg.clone(), b));
            grid.push((format!("tlb{entries}-cdp/{}", b.name()), cdp_cfg.clone(), b));
        }
    }
    let (runs, failures) = run_grid_cells(pool, &ws, s, grid);
    let points = sizes
        .iter()
        .zip(runs.chunks(2 * benches.len()))
        .map(|(&entries, chunk)| {
            let sps: Vec<Option<f64>> = chunk
                .chunks(2)
                .map(|pair| match (&pair[0], &pair[1]) {
                    (Some(base), Some(cdp)) => Some(speedup(base, cdp)),
                    _ => None,
                })
                .collect();
            Point {
                entries,
                speedup: mean_if_complete(&sps),
            }
        })
        .collect();
    TlbSweep { points, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_doublings() {
        let t = run(ExpScale::Smoke, &Pool::new(2));
        assert_eq!(t.points.len(), 5);
        assert_eq!(t.points[0].entries, 64);
        assert_eq!(t.points[4].entries, 1024);
        assert!(t.failures.is_empty());
        assert!(t.points.iter().all(|p| p.speedup.is_some()));
        assert!(t.render().contains("DTLB"));
    }
}
