//! §4.2.2: contribution of TLB prefetching.
//!
//! The data TLB is repeatedly doubled from 64 to 1024 entries. If a large
//! share of the content prefetcher's gain came from its speculative page
//! walks warming the TLB, bigger TLBs would erase the gain. The paper
//! observes only 12.6% → 12.3%: TLB prefetching is a minor contributor,
//! and no TLB-pollution signature appears either.

use cdp_sim::metrics::mean;
use cdp_sim::runner::pointer_subset;
use cdp_sim::{speedup, Pool};
use cdp_types::SystemConfig;

use crate::common::{render_table, run_grid, ExpScale, WorkloadSet};

/// One TLB size's result.
#[derive(Clone, Debug)]
pub struct Point {
    /// DTLB entries.
    pub entries: usize,
    /// Suite-average content-prefetcher speedup at this TLB size
    /// (baseline re-measured with the same TLB).
    pub speedup: f64,
}

/// The sweep.
#[derive(Clone, Debug)]
pub struct TlbSweep {
    /// 64, 128, 256, 512, 1024 entries.
    pub points: Vec<Point>,
}

impl TlbSweep {
    /// Total spread between the largest and smallest speedup.
    pub fn spread(&self) -> f64 {
        let max = self.points.iter().map(|p| p.speedup).fold(0.0, f64::max);
        let min = self
            .points
            .iter()
            .map(|p| p.speedup)
            .fold(f64::INFINITY, f64::min);
        max - min
    }

    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Section 4.2.2: content-prefetcher speedup vs data-TLB size\n\n",
        );
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.entries.to_string(),
                    format!("{:.3}", p.speedup),
                    format!("{:+.1}%", (p.speedup - 1.0) * 100.0),
                ]
            })
            .collect();
        out.push_str(&render_table(&["DTLB entries", "speedup", "gain"], &rows));
        out.push_str(&format!(
            "\nspread across TLB sizes: {:.1} points (paper: 12.6% -> 12.3%, i.e. ~0.3)\n",
            self.spread() * 100.0
        ));
        out
    }
}

/// Runs the DTLB sweep on the pointer subset as one flat pooled grid
/// (every TLB size x benchmark x {baseline, CDP} cell independently).
pub fn run(scale: ExpScale, pool: &Pool) -> TlbSweep {
    let s = scale.scale();
    let benches = pointer_subset();
    let sizes = [64usize, 128, 256, 512, 1024];
    let ws = WorkloadSet::default();
    let mut grid = Vec::new();
    for &entries in &sizes {
        let mut base_cfg = SystemConfig::asplos2002();
        base_cfg.dtlb.entries = entries;
        let mut cdp_cfg = SystemConfig::with_content();
        cdp_cfg.dtlb.entries = entries;
        for &b in &benches {
            grid.push((format!("tlb{entries}-base/{}", b.name()), base_cfg.clone(), b));
            grid.push((format!("tlb{entries}-cdp/{}", b.name()), cdp_cfg.clone(), b));
        }
    }
    let runs = run_grid(pool, &ws, s, grid);
    let points = sizes
        .iter()
        .zip(runs.chunks(2 * benches.len()))
        .map(|(&entries, chunk)| {
            let sps: Vec<f64> = chunk
                .chunks(2)
                .map(|pair| speedup(&pair[0], &pair[1]))
                .collect();
            Point {
                entries,
                speedup: mean(&sps),
            }
        })
        .collect();
    TlbSweep { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_doublings() {
        let t = run(ExpScale::Smoke, &Pool::new(2));
        assert_eq!(t.points.len(), 5);
        assert_eq!(t.points[0].entries, 64);
        assert_eq!(t.points[4].entries, 1024);
        assert!(t.render().contains("DTLB"));
    }
}
