//! Sensitivity studies: how the content prefetcher's value scales with
//! the machine balance.
//!
//! The paper motivates CDP with the widening processor/memory gap ("Such a
//! configuration tries to approximate both the features and the
//! performance of future processors", §2.1). These sweeps quantify that:
//!
//! * [`latency`] — bus/DRAM round-trip from half to double the Table 1
//!   value: the CDP gain should grow with the gap;
//! * [`l2size`] — UL2 from 512 KB to 4 MB: bigger caches absorb the misses
//!   CDP would have masked, shrinking its headroom.

use cdp_sim::runner::pointer_subset;
use cdp_sim::{speedup, Pool};
use cdp_types::SystemConfig;

use crate::common::{
    failure_note, mean_if_complete, opt_cell, render_table, run_grid_cells, CellFailure, ExpScale,
    WorkloadSet,
};

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Point {
    /// The swept parameter's value.
    pub value: u64,
    /// Suite-average content-prefetcher speedup at this point; `None`
    /// when any contributing cell failed.
    pub speedup: Option<f64>,
    /// Suite-average baseline MPTU at this point; `None` when any
    /// baseline cell failed.
    pub baseline_mptu: Option<f64>,
}

/// A parameter sweep result.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// What was swept (axis label).
    pub parameter: &'static str,
    /// The points, in sweep order.
    pub points: Vec<Point>,
    /// Cells that failed (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

impl Sweep {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Sensitivity: content-prefetcher speedup vs {}\n\n",
            self.parameter
        );
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.value.to_string(),
                    opt_cell(p.speedup, |s| format!("{s:.3}")),
                    opt_cell(p.speedup, |s| format!("{:+.1}%", (s - 1.0) * 100.0)),
                    opt_cell(p.baseline_mptu, |m| format!("{m:.2}")),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[self.parameter, "speedup", "gain", "base MPTU"],
            &rows,
        ));
        out.push_str(&failure_note(&self.failures));
        out
    }
}

fn sweep<F>(
    scale: ExpScale,
    pool: &Pool,
    parameter: &'static str,
    values: &[u64],
    mut apply: F,
) -> Sweep
where
    F: FnMut(&mut SystemConfig, u64),
{
    let s = scale.scale();
    let benches = pointer_subset();
    let ws = WorkloadSet::default();
    let mut grid = Vec::new();
    for &v in values {
        let mut base_cfg = SystemConfig::asplos2002();
        apply(&mut base_cfg, v);
        let mut cdp_cfg = SystemConfig::with_content();
        apply(&mut cdp_cfg, v);
        for &b in &benches {
            grid.push((format!("{parameter}={v}-base/{}", b.name()), base_cfg.clone(), b));
            grid.push((format!("{parameter}={v}-cdp/{}", b.name()), cdp_cfg.clone(), b));
        }
    }
    let (runs, failures) = run_grid_cells(pool, &ws, s, grid);
    let points = values
        .iter()
        .zip(runs.chunks(2 * benches.len()))
        .map(|(&v, chunk)| {
            let mut sps = Vec::new();
            let mut mptus = Vec::new();
            for pair in chunk.chunks(2) {
                sps.push(match (&pair[0], &pair[1]) {
                    (Some(base), Some(cdp)) => Some(speedup(base, cdp)),
                    _ => None,
                });
                mptus.push(pair[0].as_ref().map(cdp_sim::RunStats::mptu));
            }
            Point {
                value: v,
                speedup: mean_if_complete(&sps),
                baseline_mptu: mean_if_complete(&mptus),
            }
        })
        .collect();
    Sweep {
        parameter,
        points,
        failures,
    }
}

/// Sweeps the bus/DRAM round-trip latency (Table 1 value: 460 cycles).
pub fn latency(scale: ExpScale, pool: &Pool) -> Sweep {
    sweep(
        scale,
        pool,
        "bus latency (cycles)",
        &[230, 460, 690, 920],
        |cfg, v| cfg.bus.latency = v,
    )
}

/// Sweeps the UL2 capacity (Table 1 value: 1 MB).
pub fn l2size(scale: ExpScale, pool: &Pool) -> Sweep {
    sweep(
        scale,
        pool,
        "UL2 size (KB)",
        &[512, 1024, 2048, 4096],
        |cfg, v| cfg.ul2.size_bytes = (v as usize) * 1024,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sweep_shapes() {
        let s = latency(ExpScale::Smoke, &Pool::new(2));
        assert_eq!(s.points.len(), 4);
        assert!(s.failures.is_empty());
        // The paper's motivation: a wider processor/memory gap makes the
        // prefetcher more valuable. Compare the endpoints.
        let first = s.points.first().unwrap().speedup.expect("healthy run");
        let last = s.points.last().unwrap().speedup.expect("healthy run");
        assert!(
            last >= first - 0.05,
            "gain should grow (or hold) with latency: {first:.3} -> {last:.3}"
        );
        assert!(s.render().contains("bus latency"));
    }

    #[test]
    fn l2_sweep_shrinks_mptu() {
        let s = l2size(ExpScale::Smoke, &Pool::new(2));
        assert_eq!(s.points.len(), 4);
        let small = s.points[0].baseline_mptu.expect("healthy run");
        let big = s.points[3].baseline_mptu.expect("healthy run");
        assert!(
            big <= small + 0.5,
            "bigger L2 cannot miss more: {small:.2} -> {big:.2}"
        );
    }
}
