//! Process-wide run context for the experiments binary: keep-going mode,
//! the active fault-injection plan, the cell retry/watchdog policy, and
//! the accumulated failure report.
//!
//! Experiments are invoked through a stable `run(scale, pool)` signature
//! from many call sites (the binary, unit tests, integration tests), so
//! the failure-handling knobs travel out of band in this context instead
//! of threading through every experiment's arguments. All state is
//! default-off: a process that never touches the context gets the strict,
//! fault-free behavior, and rendered output is byte-identical to a build
//! without this module.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use cdp_sim::{FaultPlan, FaultSpec, RunPolicy};

/// One failed sweep cell, for the end-of-run report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureRecord {
    /// Experiment id (e.g. `table2`).
    pub experiment: String,
    /// Cell label (e.g. `1MB/slsb`).
    pub cell: String,
    /// The error that killed the cell.
    pub error: String,
    /// Attempts consumed.
    pub attempts: u32,
}

static KEEP_GOING: AtomicBool = AtomicBool::new(false);
static FAULT_SPECS: Mutex<Vec<FaultSpec>> = Mutex::new(Vec::new());
static POLICY: Mutex<Option<RunPolicy>> = Mutex::new(None);
static CURRENT_EXPERIMENT: Mutex<String> = Mutex::new(String::new());
static FAILURES: Mutex<Vec<FailureRecord>> = Mutex::new(Vec::new());

/// Enables (or disables) keep-going mode: failing sweep cells render as
/// annotated gaps instead of aborting the run.
pub fn set_keep_going(on: bool) {
    KEEP_GOING.store(on, Ordering::SeqCst);
}

/// Whether keep-going mode is active.
pub fn keep_going() -> bool {
    KEEP_GOING.load(Ordering::SeqCst)
}

/// Installs the fault-injection plan applied to workload builds and
/// simulation jobs.
pub fn set_fault_plan(plan: FaultPlan) {
    *FAULT_SPECS.lock().expect("fault plan lock") = plan.specs;
}

/// The active fault-injection plan (empty by default).
pub fn fault_plan() -> FaultPlan {
    FaultPlan {
        specs: FAULT_SPECS.lock().expect("fault plan lock").clone(),
    }
}

/// Sets the per-cell retry/watchdog policy.
pub fn set_policy(policy: RunPolicy) {
    *POLICY.lock().expect("policy lock") = Some(policy);
}

/// The per-cell policy ([`RunPolicy::default`] when unset: one attempt,
/// no watchdog).
pub fn policy() -> RunPolicy {
    POLICY.lock().expect("policy lock").unwrap_or_default()
}

/// Names the experiment whose cells are currently running (labels the
/// failure report).
pub fn set_current_experiment(id: &str) {
    *CURRENT_EXPERIMENT.lock().expect("experiment lock") = id.to_string();
}

/// Records one failed cell under the current experiment id.
pub fn record_failure(cell: &str, error: &str, attempts: u32) {
    let experiment = CURRENT_EXPERIMENT.lock().expect("experiment lock").clone();
    FAILURES.lock().expect("failures lock").push(FailureRecord {
        experiment,
        cell: cell.to_string(),
        error: error.to_string(),
        attempts,
    });
}

/// Takes the accumulated failure report (clearing it).
pub fn take_failures() -> Vec<FailureRecord> {
    std::mem::take(&mut *FAILURES.lock().expect("failures lock"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_strict_and_empty() {
        // Note: other tests in this binary must not mutate the globals,
        // so the defaults observed here are the process-wide truth.
        assert!(fault_plan().is_empty());
        assert_eq!(policy(), RunPolicy::default());
    }

    #[test]
    fn failure_records_carry_the_experiment_id() {
        set_current_experiment("ctx-test");
        record_failure("cell-a", "broke", 2);
        let got = take_failures();
        let rec = got.iter().find(|r| r.cell == "cell-a").expect("recorded");
        assert_eq!(rec.experiment, "ctx-test");
        assert_eq!(rec.attempts, 2);
        assert!(take_failures().iter().all(|r| r.cell != "cell-a"));
    }
}
