//! Process-wide run context for the experiments binary: keep-going mode,
//! the active fault-injection plan, the cell retry/watchdog policy, and
//! the accumulated failure report.
//!
//! Experiments are invoked through a stable `run(scale, pool)` signature
//! from many call sites (the binary, unit tests, integration tests), so
//! the failure-handling knobs travel out of band in this context instead
//! of threading through every experiment's arguments. All state is
//! default-off: a process that never touches the context gets the strict,
//! fault-free behavior, and rendered output is byte-identical to a build
//! without this module.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use cdp_sim::{FaultPlan, FaultSpec, JobObs, ObsSink, ResultCache, RunPolicy};
use cdp_types::ObsConfig;

use crate::obs::{CellRecord, ExperimentRecord, ObsTaken};

/// One failed sweep cell, for the end-of-run report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureRecord {
    /// Experiment id (e.g. `table2`).
    pub experiment: String,
    /// Cell label (e.g. `1MB/slsb`).
    pub cell: String,
    /// The error that killed the cell.
    pub error: String,
    /// Attempts consumed.
    pub attempts: u32,
}

/// Observability collection state, alive between [`enable_obs`] and
/// [`take_obs`].
#[derive(Debug)]
struct ObsState {
    cfg: ObsConfig,
    sink: Arc<ObsSink>,
    cells: Vec<CellRecord>,
    experiments: Vec<ExperimentRecord>,
    /// batch id → owning experiment id; `len()` is the next batch id.
    batch_experiments: Vec<String>,
}

static KEEP_GOING: AtomicBool = AtomicBool::new(false);
static VERBOSE_TIMING: AtomicBool = AtomicBool::new(false);
static FAULT_SPECS: Mutex<Vec<FaultSpec>> = Mutex::new(Vec::new());
static POLICY: Mutex<Option<RunPolicy>> = Mutex::new(None);
static CURRENT_EXPERIMENT: Mutex<String> = Mutex::new(String::new());
static FAILURES: Mutex<Vec<FailureRecord>> = Mutex::new(Vec::new());
static OBS: Mutex<Option<ObsState>> = Mutex::new(None);
static RESULT_CACHE: Mutex<Option<Arc<ResultCache>>> = Mutex::new(None);
static RESULT_STORE: Mutex<Option<Arc<cdp_store::ResultStore>>> = Mutex::new(None);
static CHECKPOINT: Mutex<Option<CheckpointSettings>> = Mutex::new(None);
/// Checkpoint writes dropped across the whole run (summed from per-cell
/// [`cdp_sim::CheckpointStatus`] slots after each grid).
static CHECKPOINT_DROPPED_WRITES: std::sync::atomic::AtomicU64 =
    std::sync::atomic::AtomicU64::new(0);

/// Process-wide checkpointing configuration (`--checkpoint-dir`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointSettings {
    /// Directory holding the per-cell `.snap` files.
    pub dir: PathBuf,
    /// Simulated cycles between checkpoint writes.
    pub every: u64,
    /// Whether cells may resume from an existing checkpoint
    /// (`--resume`).
    pub resume: bool,
}

/// Enables (or disables) keep-going mode: failing sweep cells render as
/// annotated gaps instead of aborting the run.
pub fn set_keep_going(on: bool) {
    KEEP_GOING.store(on, Ordering::SeqCst);
}

/// Whether keep-going mode is active.
pub fn keep_going() -> bool {
    KEEP_GOING.load(Ordering::SeqCst)
}

/// Installs the fault-injection plan applied to workload builds and
/// simulation jobs.
pub fn set_fault_plan(plan: FaultPlan) {
    *FAULT_SPECS.lock().expect("fault plan lock") = plan.specs;
}

/// The active fault-injection plan (empty by default).
pub fn fault_plan() -> FaultPlan {
    FaultPlan {
        specs: FAULT_SPECS.lock().expect("fault plan lock").clone(),
    }
}

/// Sets the per-cell retry/watchdog policy.
pub fn set_policy(policy: RunPolicy) {
    *POLICY.lock().expect("policy lock") = Some(policy);
}

/// The per-cell policy ([`RunPolicy::default`] when unset: one attempt,
/// no watchdog).
pub fn policy() -> RunPolicy {
    POLICY.lock().expect("policy lock").unwrap_or_default()
}

/// Names the experiment whose cells are currently running (labels the
/// failure report).
pub fn set_current_experiment(id: &str) {
    *CURRENT_EXPERIMENT.lock().expect("experiment lock") = id.to_string();
}

/// Records one failed cell under the current experiment id.
pub fn record_failure(cell: &str, error: &str, attempts: u32) {
    let experiment = CURRENT_EXPERIMENT.lock().expect("experiment lock").clone();
    FAILURES.lock().expect("failures lock").push(FailureRecord {
        experiment,
        cell: cell.to_string(),
        error: error.to_string(),
        attempts,
    });
}

/// Takes the accumulated failure report (clearing it).
pub fn take_failures() -> Vec<FailureRecord> {
    std::mem::take(&mut *FAILURES.lock().expect("failures lock"))
}

/// The experiment id currently running (empty when none was named).
pub fn current_experiment() -> String {
    CURRENT_EXPERIMENT.lock().expect("experiment lock").clone()
}

/// Enables (or disables) the per-id wall-time line on stderr.
pub fn set_verbose_timing(on: bool) {
    VERBOSE_TIMING.store(on, Ordering::SeqCst);
}

/// Whether the per-id wall-time stderr line is enabled.
pub fn verbose_timing() -> bool {
    VERBOSE_TIMING.load(Ordering::SeqCst)
}

/// Starts collecting observability data (`--emit-manifest`): cell and
/// experiment records accumulate, and — when `cfg` enables tracing or
/// metrics windowing — grid jobs get an observation sink attached.
pub fn enable_obs(cfg: ObsConfig) {
    *OBS.lock().expect("obs lock") = Some(ObsState {
        cfg,
        sink: ObsSink::shared(),
        cells: Vec::new(),
        experiments: Vec::new(),
        batch_experiments: Vec::new(),
    });
}

/// Whether observability collection is active.
pub fn obs_enabled() -> bool {
    OBS.lock().expect("obs lock").is_some()
}

/// Allocates the next observation batch id, owned by the current
/// experiment. Returns 0 when collection is off (the id is then unused).
pub fn obs_new_batch() -> u64 {
    let mut guard = OBS.lock().expect("obs lock");
    match guard.as_mut() {
        None => 0,
        Some(state) => {
            let id = state.batch_experiments.len() as u64;
            state.batch_experiments.push(current_experiment());
            id
        }
    }
}

/// The observation attachment for grid job `index` of `batch`, or `None`
/// when collection is off or neither tracing nor windowing is requested.
pub fn obs_job_attachment(batch: u64, index: usize) -> Option<JobObs> {
    let guard = OBS.lock().expect("obs lock");
    let state = guard.as_ref()?;
    if !state.cfg.is_enabled() {
        return None;
    }
    Some(JobObs {
        cfg: state.cfg.clone(),
        sink: Arc::clone(&state.sink),
        batch,
        index,
    })
}

/// Records one finished grid cell for the manifest. No-op when
/// collection is off.
pub fn obs_record_cell(record: CellRecord) {
    if let Some(state) = OBS.lock().expect("obs lock").as_mut() {
        state.cells.push(record);
    }
}

/// Records one finished experiment id's wall time for the manifest.
/// No-op when collection is off.
pub fn obs_record_experiment(id: &str, wall_ms: u64) {
    if let Some(state) = OBS.lock().expect("obs lock").as_mut() {
        state.experiments.push(ExperimentRecord {
            id: id.to_string(),
            wall_ms,
        });
    }
}

/// Enables (or disables) the process-wide fingerprint-keyed result
/// cache. Cached cells replay their finished [`RunStats`] (and any
/// observation) instead of re-simulating; rendered output is
/// byte-identical either way, so the binary turns it on by default and
/// `--no-result-cache` opts out.
///
/// When a persistent store directory was installed beforehand
/// ([`set_result_store`]), the cache is created as a write-through L1
/// over it: results persist across processes, and a warm store replays
/// whole sweeps without simulating.
///
/// [`RunStats`]: cdp_sim::RunStats
pub fn set_result_cache(on: bool) {
    let cache = if on {
        match RESULT_STORE.lock().expect("result store lock").as_ref() {
            Some(store) => Some(Arc::new(ResultCache::with_store(Arc::clone(store)))),
            None => Some(Arc::new(ResultCache::new())),
        }
    } else {
        None
    };
    *RESULT_CACHE.lock().expect("result cache lock") = cache;
}

/// Opens (creating if needed) the persistent result store at `dir` and
/// installs it process-wide. Must run before [`set_result_cache`] for
/// the cache to pick it up. Opening sweeps stale temp files and bumps
/// the store generation.
///
/// # Errors
///
/// Propagates the store's typed open failure (unwritable directory,
/// maintenance lock held by another process).
pub fn set_result_store(dir: &std::path::Path) -> Result<(), cdp_types::StoreError> {
    let store = cdp_store::ResultStore::open(dir)?;
    *RESULT_STORE.lock().expect("result store lock") = Some(Arc::new(store));
    Ok(())
}

/// The persistent result store, if one was installed.
pub fn result_store() -> Option<Arc<cdp_store::ResultStore>> {
    RESULT_STORE.lock().expect("result store lock").clone()
}

/// `(hits, misses, quarantined)` served by the persistent store so far
/// (zeros when no store is installed).
pub fn result_store_stats() -> (u64, u64, u64) {
    match result_store() {
        Some(s) => {
            let st = s.stats();
            (st.hits, st.misses, st.quarantined)
        }
        None => (0, 0, 0),
    }
}

/// The shared result cache, if enabled.
pub fn result_cache() -> Option<Arc<ResultCache>> {
    RESULT_CACHE.lock().expect("result cache lock").clone()
}

/// Enables per-cell checkpointing: sweep cells snapshot their simulation
/// state into `settings.dir` every `settings.every` cycles, and — when
/// `settings.resume` is set — pick up from an existing checkpoint
/// instead of starting over. Rendered output is byte-identical with
/// checkpointing on, off, or resumed (DESIGN.md §12).
pub fn set_checkpointing(settings: Option<CheckpointSettings>) {
    *CHECKPOINT.lock().expect("checkpoint lock") = settings;
}

/// The active checkpoint settings, if any.
pub fn checkpointing() -> Option<CheckpointSettings> {
    CHECKPOINT.lock().expect("checkpoint lock").clone()
}

/// `(hits, misses)` served by the result cache so far (zeros when the
/// cache is disabled).
pub fn result_cache_stats() -> (u64, u64) {
    match result_cache() {
        Some(c) => (c.hits(), c.misses()),
        None => (0, 0),
    }
}

/// Adds `n` dropped checkpoint writes to the run-wide total (summed from
/// per-cell status slots after each grid).
pub fn add_checkpoint_dropped_writes(n: u64) {
    CHECKPOINT_DROPPED_WRITES.fetch_add(n, Ordering::Relaxed);
}

/// Checkpoint writes dropped so far across the whole run.
pub fn checkpoint_dropped_writes() -> u64 {
    CHECKPOINT_DROPPED_WRITES.load(Ordering::Relaxed)
}

/// Ends collection and returns everything accumulated, with sink entries
/// drained in `(batch, index)` order. `None` if collection was off.
pub fn take_obs() -> Option<ObsTaken> {
    let state = OBS.lock().expect("obs lock").take()?;
    let (result_cache_hits, result_cache_misses) = result_cache_stats();
    let (result_store_hits, result_store_misses, result_store_quarantined) = result_store_stats();
    Some(ObsTaken {
        cells: state.cells,
        experiments: state.experiments,
        entries: state.sink.drain_sorted(),
        batch_experiments: state.batch_experiments,
        result_cache_hits,
        result_cache_misses,
        result_store_hits,
        result_store_misses,
        result_store_quarantined,
        checkpoint_dropped_writes: checkpoint_dropped_writes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_strict_and_empty() {
        // Note: other tests in this binary must not mutate the globals,
        // so the defaults observed here are the process-wide truth.
        assert!(fault_plan().is_empty());
        assert_eq!(policy(), RunPolicy::default());
    }

    #[test]
    fn obs_lifecycle_collects_and_drains() {
        // Collection disabled: every hook is a cheap no-op.
        assert!(obs_job_attachment(0, 0).is_none());
        obs_record_cell(CellRecord {
            experiment: "none".into(),
            label: "dropped".into(),
            status: "ok",
            attempts: 1,
            wall_ms: 1,
            config_fingerprint: String::new(),
            checkpoint: "off",
            retired: 0,
            pf_issued: 0,
            pf_useful: 0,
            pf_wasted: 0,
        });
        // Enabled with an all-off ObsConfig: records accumulate but jobs
        // get no sink attachment (plain try_run path).
        enable_obs(ObsConfig::default());
        assert!(obs_enabled());
        assert!(obs_job_attachment(obs_new_batch(), 0).is_none());
        obs_record_cell(CellRecord {
            experiment: "ctx-obs-test".into(),
            label: "ctx-obs-cell".into(),
            status: "ok",
            attempts: 1,
            wall_ms: 5,
            config_fingerprint: "deadbeefdeadbeef".into(),
            checkpoint: "off",
            retired: 9_000,
            pf_issued: 0,
            pf_useful: 0,
            pf_wasted: 0,
        });
        obs_record_experiment("ctx-obs-test", 9);
        let taken = take_obs().expect("collection was on");
        assert!(taken.cells.iter().any(|c| c.label == "ctx-obs-cell"));
        assert!(taken.cells.iter().all(|c| c.label != "dropped"));
        assert!(taken.experiments.iter().any(|e| e.id == "ctx-obs-test"));
        assert!(take_obs().is_none(), "take ends collection");
    }

    #[test]
    fn failure_records_carry_the_experiment_id() {
        set_current_experiment("ctx-test");
        record_failure("cell-a", "broke", 2);
        let got = take_failures();
        let rec = got.iter().find(|r| r.cell == "cell-a").expect("recorded");
        assert_eq!(rec.experiment, "ctx-test");
        assert_eq!(rec.attempts, 2);
        assert!(take_failures().iter().all(|r| r.cell != "cell-a"));
    }
}
