//! Figure 10: distribution of UL2 cache load requests (stride full/partial,
//! content full/partial, unmasked misses) with per-benchmark speedups
//! overlaid, plus the §4.2.3 headline shares:
//!
//! * the content prefetcher fully eliminates ~43% of the non-stride load
//!   misses, and
//! * of the content prefetches that masked any latency, ~72% masked it
//!   fully.

use cdp_sim::{speedup, Pool, RequestDistribution};
use cdp_types::SystemConfig;
use cdp_workloads::suite::Benchmark;

use crate::common::{
    failure_note, mean_if_complete, render_table, run_grid_cells, CellFailure, ExpScale, GAP,
    WorkloadSet,
};

/// One benchmark's measured classification (present only when both its
/// baseline and CDP cells completed).
#[derive(Clone, Debug)]
pub struct RowData {
    /// Fractions `[str-full, str-part, cpf-full, cpf-part, ul2-miss]`.
    pub fractions: [f64; 5],
    /// Speedup over the stride baseline (the overlaid line).
    pub speedup: f64,
    /// Raw distribution counters.
    pub distribution: RequestDistribution,
}

/// One benchmark's row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// The measurements; `None` when a contributing cell failed.
    pub data: Option<RowData>,
}

/// The Figure 10 dataset.
#[derive(Clone, Debug)]
pub struct Figure10 {
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
    /// Suite-average speedup; `None` when any benchmark gapped out.
    pub average_speedup: Option<f64>,
    /// Share of non-stride misses fully eliminated by the content
    /// prefetcher (paper: ~43%); `None` on a partial suite (the
    /// aggregate would not be comparable).
    pub cpf_full_share_of_nonstride: Option<f64>,
    /// Of masking content prefetches, the share that fully masked
    /// (paper: ~72%); `None` on a partial suite.
    pub cpf_fully_masked_share: Option<f64>,
    /// Cells that failed (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

impl Figure10 {
    /// Renders the stacked-bar data as a table.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 10: distribution of UL2 cache load requests\n\n");
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| match &r.data {
                Some(d) => {
                    let f = d.fractions;
                    vec![
                        r.name.clone(),
                        format!("{:.1}%", f[0] * 100.0),
                        format!("{:.1}%", f[1] * 100.0),
                        format!("{:.1}%", f[2] * 100.0),
                        format!("{:.1}%", f[3] * 100.0),
                        format!("{:.1}%", f[4] * 100.0),
                        format!("{:.3}", d.speedup),
                    ]
                }
                None => {
                    let mut row = vec![r.name.clone()];
                    row.extend(std::iter::repeat_n(GAP.to_string(), 6));
                    row
                }
            })
            .collect();
        out.push_str(&render_table(
            &[
                "Benchmark", "str-full", "str-part", "cpf-full", "cpf-part", "ul2-miss",
                "speedup",
            ],
            &rows,
        ));
        match self.average_speedup {
            Some(avg) => out.push_str(&format!(
                "\naverage speedup: {:.3} ({:.1}%)\n",
                avg,
                (avg - 1.0) * 100.0
            )),
            None => out.push_str(&format!("\naverage speedup: {GAP} (partial suite)\n")),
        }
        match self.cpf_full_share_of_nonstride {
            Some(share) => out.push_str(&format!(
                "content prefetcher fully eliminates {:.0}% of non-stride load misses (paper: 43%)\n",
                share * 100.0
            )),
            None => out.push_str(&format!(
                "content prefetcher non-stride elimination share: {GAP} (partial suite)\n"
            )),
        }
        match self.cpf_fully_masked_share {
            Some(share) => out.push_str(&format!(
                "{:.0}% of masking content prefetches fully masked the latency (paper: 72%)\n",
                share * 100.0
            )),
            None => out.push_str(&format!(
                "fully-masked share of masking content prefetches: {GAP} (partial suite)\n"
            )),
        }
        out.push_str(&failure_note(&self.failures));
        out
    }
}

/// Runs the full suite under baseline and tuned-CDP configurations,
/// both runs of every benchmark as independent pool jobs.
pub fn run(scale: ExpScale, pool: &Pool) -> Figure10 {
    let s = scale.scale();
    let base_cfg = SystemConfig::asplos2002();
    let cdp_cfg = SystemConfig::with_content();
    let ws = WorkloadSet::default();
    let mut grid = Vec::new();
    for b in Benchmark::all() {
        grid.push((format!("base/{}", b.name()), base_cfg.clone(), b));
        grid.push((format!("cdp/{}", b.name()), cdp_cfg.clone(), b));
    }
    let (runs, failures) = run_grid_cells(pool, &ws, s, grid);
    let mut rows = Vec::new();
    let mut agg = RequestDistribution::default();
    let mut complete = true;
    for (b, pair) in Benchmark::all().into_iter().zip(runs.chunks(2)) {
        let data = match (&pair[0], &pair[1]) {
            (Some(base), Some(cdp)) => {
                let d = cdp.mem.distribution;
                agg.stride_full += d.stride_full;
                agg.stride_partial += d.stride_partial;
                agg.cpf_full += d.cpf_full;
                agg.cpf_partial += d.cpf_partial;
                agg.unmasked_misses += d.unmasked_misses;
                Some(RowData {
                    fractions: d.fractions(),
                    speedup: speedup(base, cdp),
                    distribution: d,
                })
            }
            _ => {
                complete = false;
                None
            }
        };
        rows.push(Row {
            name: b.name().to_string(),
            data,
        });
    }
    let speedups: Vec<Option<f64>> = rows
        .iter()
        .map(|r| r.data.as_ref().map(|d| d.speedup))
        .collect();
    Figure10 {
        average_speedup: mean_if_complete(&speedups),
        cpf_full_share_of_nonstride: complete.then(|| agg.cpf_full_share_of_nonstride()),
        cpf_fully_masked_share: complete.then(|| agg.cpf_fully_masked_share()),
        rows,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_distributions() {
        let f = run(ExpScale::Smoke, &Pool::new(2));
        assert_eq!(f.rows.len(), 15);
        for r in &f.rows {
            let d = r.data.as_ref().expect("healthy run");
            let sum: f64 = d.fractions.iter().sum();
            assert!(
                d.distribution.total() == 0 || (sum - 1.0).abs() < 1e-9,
                "{}: fractions sum {sum}",
                r.name
            );
        }
        assert!(f.average_speedup.expect("healthy run") > 0.9);
        assert!((0.0..=1.0).contains(&f.cpf_fully_masked_share.expect("healthy run")));
    }
}
