//! Figure 10: distribution of UL2 cache load requests (stride full/partial,
//! content full/partial, unmasked misses) with per-benchmark speedups
//! overlaid, plus the §4.2.3 headline shares:
//!
//! * the content prefetcher fully eliminates ~43% of the non-stride load
//!   misses, and
//! * of the content prefetches that masked any latency, ~72% masked it
//!   fully.

use cdp_sim::metrics::mean;
use cdp_sim::{speedup, Pool, RequestDistribution};
use cdp_types::SystemConfig;
use cdp_workloads::suite::Benchmark;

use crate::common::{render_table, run_grid, ExpScale, WorkloadSet};

/// One benchmark's classification.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Fractions `[str-full, str-part, cpf-full, cpf-part, ul2-miss]`.
    pub fractions: [f64; 5],
    /// Speedup over the stride baseline (the overlaid line).
    pub speedup: f64,
    /// Raw distribution counters.
    pub distribution: RequestDistribution,
}

/// The Figure 10 dataset.
#[derive(Clone, Debug)]
pub struct Figure10 {
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
    /// Suite-average speedup.
    pub average_speedup: f64,
    /// Share of non-stride misses fully eliminated by the content
    /// prefetcher (paper: ~43%).
    pub cpf_full_share_of_nonstride: f64,
    /// Of masking content prefetches, the share that fully masked
    /// (paper: ~72%).
    pub cpf_fully_masked_share: f64,
}

impl Figure10 {
    /// Renders the stacked-bar data as a table.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 10: distribution of UL2 cache load requests\n\n");
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let f = r.fractions;
                vec![
                    r.name.clone(),
                    format!("{:.1}%", f[0] * 100.0),
                    format!("{:.1}%", f[1] * 100.0),
                    format!("{:.1}%", f[2] * 100.0),
                    format!("{:.1}%", f[3] * 100.0),
                    format!("{:.1}%", f[4] * 100.0),
                    format!("{:.3}", r.speedup),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[
                "Benchmark", "str-full", "str-part", "cpf-full", "cpf-part", "ul2-miss",
                "speedup",
            ],
            &rows,
        ));
        out.push_str(&format!(
            "\naverage speedup: {:.3} ({:.1}%)\n",
            self.average_speedup,
            (self.average_speedup - 1.0) * 100.0
        ));
        out.push_str(&format!(
            "content prefetcher fully eliminates {:.0}% of non-stride load misses (paper: 43%)\n",
            self.cpf_full_share_of_nonstride * 100.0
        ));
        out.push_str(&format!(
            "{:.0}% of masking content prefetches fully masked the latency (paper: 72%)\n",
            self.cpf_fully_masked_share * 100.0
        ));
        out
    }
}

/// Runs the full suite under baseline and tuned-CDP configurations,
/// both runs of every benchmark as independent pool jobs.
pub fn run(scale: ExpScale, pool: &Pool) -> Figure10 {
    let s = scale.scale();
    let base_cfg = SystemConfig::asplos2002();
    let cdp_cfg = SystemConfig::with_content();
    let ws = WorkloadSet::default();
    let mut grid = Vec::new();
    for b in Benchmark::all() {
        grid.push((format!("base/{}", b.name()), base_cfg.clone(), b));
        grid.push((format!("cdp/{}", b.name()), cdp_cfg.clone(), b));
    }
    let runs = run_grid(pool, &ws, s, grid);
    let mut rows = Vec::new();
    let mut agg = RequestDistribution::default();
    for (b, pair) in Benchmark::all().into_iter().zip(runs.chunks(2)) {
        let (base, cdp) = (&pair[0], &pair[1]);
        let d = cdp.mem.distribution;
        agg.stride_full += d.stride_full;
        agg.stride_partial += d.stride_partial;
        agg.cpf_full += d.cpf_full;
        agg.cpf_partial += d.cpf_partial;
        agg.unmasked_misses += d.unmasked_misses;
        rows.push(Row {
            name: b.name().to_string(),
            fractions: d.fractions(),
            speedup: speedup(base, cdp),
            distribution: d,
        });
    }
    let average_speedup = mean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
    Figure10 {
        rows,
        average_speedup,
        cpf_full_share_of_nonstride: agg.cpf_full_share_of_nonstride(),
        cpf_fully_masked_share: agg.cpf_fully_masked_share(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_distributions() {
        let f = run(ExpScale::Smoke, &Pool::new(2));
        assert_eq!(f.rows.len(), 15);
        for r in &f.rows {
            let sum: f64 = r.fractions.iter().sum();
            assert!(
                r.distribution.total() == 0 || (sum - 1.0).abs() < 1e-9,
                "{}: fractions sum {sum}",
                r.name
            );
        }
        assert!(f.average_speedup > 0.9);
        assert!((0.0..=1.0).contains(&f.cpf_fully_masked_share));
    }
}
