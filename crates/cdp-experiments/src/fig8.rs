//! Figure 8: adjusted coverage and accuracy versus alignment bits and
//! scan step, with compare/filter fixed at 8.4.
//!
//! The paper sweeps "8.4.A.S" for A ∈ {0,1,2,4} and S ∈ {1,2,4} and picks
//! 8.4.1.2: predicting only on 2-byte alignment with a 2-byte scan step.

use cdp_sim::Pool;
use cdp_types::VamConfig;

use crate::common::{
    failure_note, opt_cell, render_table, run_grid_cells, CellFailure, ExpScale, WorkloadSet,
};
use crate::fig7::{baselines, best_complete, reduce_point, vam_cfg};

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Point {
    /// "8.4.A.S" label.
    pub label: String,
    /// Configuration measured.
    pub vam: VamConfig,
    /// Suite-average adjusted coverage; `None` when any contributing
    /// cell failed.
    pub coverage: Option<f64>,
    /// Suite-average adjusted accuracy; `None` when any contributing
    /// cell failed.
    pub accuracy: Option<f64>,
}

/// The full sweep.
#[derive(Clone, Debug)]
pub struct Figure8 {
    /// Points in the paper's x-axis order.
    pub points: Vec<Point>,
    /// Best coverage x accuracy trade-off index; `None` when no point
    /// completed.
    pub best: Option<usize>,
    /// Cells that failed (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

impl Figure8 {
    /// Renders the series.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 8: adjusted coverage and accuracy vs align bits and scan step\n\n",
        );
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                vec![
                    p.label.clone(),
                    opt_cell(p.coverage, |c| format!("{:.1}%", c * 100.0)),
                    opt_cell(p.accuracy, |a| format!("{:.1}%", a * 100.0)),
                    if Some(i) == self.best { "<= best trade-off".into() } else { String::new() },
                ]
            })
            .collect();
        out.push_str(&render_table(&["N.M.A.S", "coverage", "accuracy", ""], &rows));
        out.push_str(&failure_note(&self.failures));
        out
    }
}

/// The paper's x-axis: (align_bits, scan_step) with N.M fixed at 8.4.
pub fn paper_sweep() -> Vec<(u32, usize)> {
    let mut v = Vec::new();
    for step in [1usize, 2, 4] {
        for align in [0u32, 1, 2, 4] {
            v.push((align, step));
        }
    }
    v
}

/// Runs the Figure 8 sweep as one flat pooled grid (every sweep point x
/// benchmark is an independent simulation).
pub fn run(scale: ExpScale, pool: &Pool) -> Figure8 {
    let ws = WorkloadSet::default();
    let (base, mut failures) = baselines(&ws, scale, pool);
    let sweep = paper_sweep();
    let vams: Vec<VamConfig> = sweep
        .iter()
        .map(|&(align, step)| VamConfig {
            compare_bits: 8,
            filter_bits: 4,
            align_bits: align,
            scan_step: step,
        })
        .collect();
    let mut grid = Vec::new();
    for (&(align, step), vam) in sweep.iter().zip(&vams) {
        for (b, _) in &base {
            grid.push((format!("8.4.{align}.{step}/{}", b.name()), vam_cfg(*vam), *b));
        }
    }
    let (runs, sweep_failures) = run_grid_cells(pool, &ws, scale.scale(), grid);
    failures.extend(sweep_failures);
    let mut points = Vec::new();
    for (i, (&(align, step), vam)) in sweep.iter().zip(&vams).enumerate() {
        let chunk = &runs[i * base.len()..(i + 1) * base.len()];
        let (cov, acc) = reduce_point(chunk, &base);
        points.push(Point {
            label: format!("8.4.{align}.{step}"),
            vam: *vam,
            coverage: cov,
            accuracy: acc,
        });
    }
    let best = best_complete(
        &points
            .iter()
            .map(|p| (p.coverage, p.accuracy))
            .collect::<Vec<_>>(),
    );
    Figure8 { points, best, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig7::measure_vam;

    #[test]
    fn twelve_points() {
        let s = paper_sweep();
        assert_eq!(s.len(), 12);
        assert!(s.contains(&(1, 2)), "the paper's chosen 8.4.1.2");
    }

    #[test]
    fn four_byte_alignment_cannot_beat_two_byte_coverage() {
        let pool = Pool::new(2);
        let ws = WorkloadSet::default();
        let (base, base_failures) = baselines(&ws, ExpScale::Smoke, &pool);
        assert!(base_failures.is_empty());
        let at = |align: u32| {
            let ((cov, _), failures) = measure_vam(
                &ws,
                ExpScale::Smoke,
                &pool,
                VamConfig {
                    compare_bits: 8,
                    filter_bits: 4,
                    align_bits: align,
                    scan_step: 2,
                },
                &base,
            );
            assert!(failures.is_empty());
            cov.expect("healthy run")
        };
        let cov1 = at(1);
        let cov4 = at(4);
        assert!(
            cov4 <= cov1 + 0.02,
            "stricter alignment cannot add coverage: {cov1} -> {cov4}"
        );
    }
}
