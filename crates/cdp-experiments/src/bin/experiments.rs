//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <id>... [--smoke|--quick|--full] [--jobs N] [--csv <dir>]
//! experiments all [--quick] [--jobs N]
//! ```
//!
//! `--jobs N` caps the simulation worker threads (default: every
//! available core). Output is byte-identical at any job count; per-id
//! wall times go to stderr so stdout stays comparable.
//!
//! Ids: `table1 fig1 table2 fig2 fig34 fig7 fig8 fig9 fig10 fig11 tlb
//! pollution`.

use std::time::Instant;

use cdp_experiments::{
    extensions, fig1, fig10, fig11, fig2, fig34, fig7, fig8, fig9, pollution, sensitivity,
    suite_summary, table1, table2, tlb, ExpScale,
};
use cdp_sim::Pool;
use cdp_types::VamConfig;

const ALL: [&str; 19] = [
    "table1", "fig1", "table2", "fig2", "fig34", "fig7", "fig8", "fig9", "fig10", "fig11",
    "tlb", "pollution", "suite", "margin", "adaptive", "streams", "latency", "l2size",
    "backward",
];

fn run_one(
    id: &str,
    scale: ExpScale,
    pool: &Pool,
    csv_dir: Option<&std::path::Path>,
) -> Result<String, String> {
    use cdp_experiments::report::ToDataset;
    let save = |d: cdp_experiments::report::Dataset| -> Result<(), String> {
        if let Some(dir) = csv_dir {
            let path = d.write_to(dir).map_err(|e| format!("csv write failed: {e}"))?;
            eprintln!("wrote {}", path.display());
        }
        Ok(())
    };
    match id {
        "table1" => Ok(table1::run()),
        "fig1" => {
            let r = fig1::run(scale);
            save(r.dataset())?;
            Ok(r.render())
        }
        "table2" => {
            let r = table2::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "fig2" => Ok(fig2::run(VamConfig::tuned())),
        "fig34" => Ok(fig34::run().render().to_string()),
        "fig7" => {
            let r = fig7::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "fig8" => {
            let r = fig8::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "fig9" => {
            let r = fig9::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "fig10" => {
            let r = fig10::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "fig11" => {
            let r = fig11::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "tlb" => {
            let r = tlb::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "pollution" => {
            let r = pollution::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "suite" => {
            let r = suite_summary::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "margin" => Ok(extensions::margin(scale, pool).render()),
        "adaptive" => Ok(extensions::adaptive(scale, pool).render()),
        "streams" => Ok(extensions::stream(scale, pool).render()),
        "latency" => Ok(sensitivity::latency(scale, pool).render()),
        "l2size" => Ok(sensitivity::l2size(scale, pool).render()),
        "backward" => Ok(extensions::backward(scale, pool).render()),
        other => Err(format!("unknown experiment id: {other}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExpScale::Quick;
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut expect_csv_dir = false;
    let mut jobs: Option<usize> = None;
    let mut expect_jobs = false;
    for a in &args {
        if expect_csv_dir {
            csv_dir = Some(std::path::PathBuf::from(a));
            expect_csv_dir = false;
            continue;
        }
        if expect_jobs {
            match a.parse::<usize>() {
                Ok(n) if n > 0 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs requires a positive integer, got {a:?}");
                    std::process::exit(2);
                }
            }
            expect_jobs = false;
            continue;
        }
        match a.as_str() {
            "--smoke" => scale = ExpScale::Smoke,
            "--quick" => scale = ExpScale::Quick,
            "--full" => scale = ExpScale::Full,
            "--csv" => expect_csv_dir = true,
            "--jobs" => expect_jobs = true,
            "all" => ids.extend(ALL.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if expect_csv_dir {
        eprintln!("--csv requires a directory argument");
        std::process::exit(2);
    }
    if expect_jobs {
        eprintln!("--jobs requires a worker-count argument");
        std::process::exit(2);
    }
    if ids.is_empty() {
        eprintln!("usage: experiments <id>... [--smoke|--quick|--full] [--jobs N] [--csv <dir>]");
        eprintln!("ids: {}  (or: all)", ALL.join(" "));
        std::process::exit(2);
    }
    let pool = jobs.map_or_else(Pool::default, Pool::new);
    for id in ids {
        let t0 = Instant::now();
        match run_one(&id, scale, &pool, csv_dir.as_deref()) {
            Ok(text) => {
                // Wall time goes to stderr: stdout must be byte-identical
                // at any --jobs count.
                eprintln!("{id}: {:.1?} ({} jobs)", t0.elapsed(), pool.jobs());
                println!("================================================================");
                println!("== {id}  (scale: {scale:?})");
                println!("================================================================");
                println!("{text}");
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
}
