//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <id>... [--smoke|--quick|--full|--scale NAME] [--stream]
//!             [--jobs N] [--csv <dir>]
//!             [--keep-going] [--fault SPEC]... [--cell-timeout SECS]
//!             [--retries N] [--emit-manifest <dir>] [--trace]
//!             [--trace-filter SPEC] [--metrics-window UOPS]
//!             [--profile-hist] [--status-jsonl PATH|-]
//!             [--verbose-timing] [--no-result-cache] [--no-fast-forward]
//!             [--result-store <dir>]
//!             [--checkpoint-dir <dir>] [--checkpoint-every CYCLES] [--resume]
//! experiments all [--quick] [--jobs N]
//! ```
//!
//! `--jobs N` caps the simulation worker threads (default: every
//! available core). Output is byte-identical at any job count; per-id
//! wall times go to stderr under `--verbose-timing` so stdout stays
//! comparable.
//!
//! A fingerprint-keyed result cache (DESIGN.md §8) replays finished
//! cells that recur across sweeps — same config, workload, scale, and
//! seed — instead of re-simulating them. Stdout is byte-identical with
//! the cache on or off; `--no-result-cache` disables it, and
//! `--verbose-timing` reports the hit/miss counts on stderr.
//!
//! `--result-store <dir>` (DESIGN.md §14) backs the result cache with a
//! crash-safe on-disk store: finished cells persist across processes, so
//! a re-run of the same sweep replays every cell from disk (the manifest
//! shows `result_store_misses: 0`) with byte-identical stdout. Damaged
//! entries are quarantined and recomputed, never replayed; the
//! `store-fsck` binary validates/repairs a store directory. Requires the
//! result cache (conflicts with `--no-result-cache`).
//!
//! `--no-fast-forward` disables the core's idle-cycle event skip and
//! steps every cycle (DESIGN.md §"Event fast-forward"). Skipped cycles
//! are provably barren, so output is byte-identical either way — the
//! flag exists so CI can diff the fast path against the cycle-by-cycle
//! reference schedule.
//!
//! Observability (see EXPERIMENTS.md and DESIGN.md §7):
//!
//! * `--emit-manifest <dir>` — write `manifest.json` (config
//!   fingerprints, per-cell status/attempts/wall-time, aggregates) plus
//!   any captured JSONL series into `<dir>`.
//! * `--trace` — capture structured trace events (ring-buffered) from
//!   every sweep cell; `--trace-filter SPEC` restricts the categories
//!   (`vam,issue,drop,depth,rescan,mshr,fault` or `all`) and implies
//!   `--trace`.
//! * `--metrics-window UOPS` — emit a `metrics.jsonl` time-series with
//!   one record per `UOPS` retired µops per cell.
//! * `--profile-hist` — collect log-bucketed latency histograms
//!   (load-to-use, prefetch issue-to-use, MSHR occupancy, ROB stall
//!   run-lengths; DESIGN.md §15) from every sweep cell and fold their
//!   percentiles into the manifest's per-cell records.
//!
//! The capture flags require `--emit-manifest`. With all of them off,
//! simulated state and stdout are byte-identical to a build without the
//! observability layer.
//!
//! `--status-jsonl PATH|-` streams one JSON object per line as sweep
//! cells move through the pool (`queued` / `running` / `retrying` /
//! `done` with wall time, result provenance, and a sweep ETA) into
//! `PATH`, or onto stderr with `-`. Stdout is byte-identical with the
//! stream on or off; it does not require `--emit-manifest`.
//!
//! Checkpointing (DESIGN.md §12):
//!
//! * `--checkpoint-dir <dir>` — every sweep cell periodically snapshots
//!   its full simulation state into `<dir>/cell-<key>.snap` (atomic
//!   tmp-file + rename writes; the file is removed when the cell
//!   finishes).
//! * `--checkpoint-every CYCLES` — simulated cycles between snapshot
//!   writes (default 1000000).
//! * `--resume` — cells whose checkpoint file exists continue from it
//!   instead of starting over; a checkpoint that fails validation is
//!   discarded and the cell restarts fresh. Resumed runs produce
//!   byte-identical stdout, manifests, and trace series; the manifest
//!   records each cell's provenance (`fresh`, `resumed`,
//!   `corrupt-fallback`, or `off`).
//!
//! Fault tolerance:
//!
//! * `--keep-going` — a failing sweep cell renders as an annotated gap
//!   (`--`) instead of aborting; a failure report goes to stderr at the
//!   end of the run.
//! * `--fault SPEC` (repeatable) — deterministic fault injection:
//!   `corrupt:<bench>:<seed>[:<words>]`, `unmap:<bench>:<seed>[:<pages>]`,
//!   or `walk:<bench>:<period>[:demand]` (`<bench>` may be `*`).
//! * `--cell-timeout SECS` — per-cell wall-clock watchdog.
//! * `--retries N` — attempts per cell (default 1; timeouts never retry).
//!
//! Exit codes: `0` success, `2` usage error, `3` partial failure (some
//! cells failed under `--keep-going`).
//!
//! `--scale NAME` selects any tier by name (`smoke`/`quick`/`full`/
//! `large`/`huge`); the streaming tiers `large` (~100M uops/cell) and
//! `huge` (~1B uops/cell) synthesize uops on the fly with
//! O(instruction-window) resident memory. `--stream` forces the
//! streaming engine at every tier — stdout is byte-identical to the
//! materialized engine (see the `cdp-workloads` streaming module docs),
//! so the flag exists for CI differential runs.
//!
//! Ids: `table1 fig1 table2 fig2 fig34 fig7 fig8 fig9 fig10 fig11 tlb
//! pollution` (plus `onecell`, a single-cell scale driver for the
//! streaming tiers, and `tournament`, the equal-silicon prefetcher-zoo
//! sweep; neither is part of `all`).
//!
//! `--budget BYTES` (repeatable, tournament only) sets the equal-silicon
//! table budgets to sweep; the default is 16 KiB and 64 KiB. A budget no
//! engine geometry can realize within ±5% is refused with exit code 2
//! before anything simulates.

use std::time::{Duration, Instant};

use cdp_experiments::{
    context, extensions, fig1, fig10, fig11, fig2, fig34, fig7, fig8, fig9, onecell, pollution,
    sensitivity, suite_summary, table1, table2, tlb, tournament, ExpScale,
};
use cdp_experiments::obs;
use cdp_sim::{FaultPlan, FaultSpec, Pool, RunPolicy};
use cdp_types::{ObsConfig, TraceConfig, TraceFilter, VamConfig};

const ALL: [&str; 19] = [
    "table1", "fig1", "table2", "fig2", "fig34", "fig7", "fig8", "fig9", "fig10", "fig11",
    "tlb", "pollution", "suite", "margin", "adaptive", "streams", "latency", "l2size",
    "backward",
];

/// Partial-failure exit code (documented in the header and DESIGN.md).
const EXIT_PARTIAL: i32 = 3;

/// Default simulated cycles between checkpoint writes
/// (`--checkpoint-every`): frequent enough that a killed quick-scale run
/// loses at most a few seconds of simulation, rare enough that snapshot
/// encoding stays invisible in the cell wall times.
const DEFAULT_CHECKPOINT_EVERY: u64 = 1_000_000;

fn run_one(
    id: &str,
    scale: ExpScale,
    pool: &Pool,
    csv_dir: Option<&std::path::Path>,
    budgets: &[usize],
) -> Result<String, String> {
    use cdp_experiments::report::ToDataset;
    let save = |d: cdp_experiments::report::Dataset| -> Result<(), String> {
        if let Some(dir) = csv_dir {
            let path = d.write_to(dir).map_err(|e| format!("csv write failed: {e}"))?;
            eprintln!("wrote {}", path.display());
        }
        Ok(())
    };
    match id {
        "table1" => Ok(table1::run()),
        "fig1" => {
            let r = fig1::run(scale);
            save(r.dataset())?;
            Ok(r.render())
        }
        "table2" => {
            let r = table2::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "fig2" => Ok(fig2::run(VamConfig::tuned())),
        "fig34" => Ok(fig34::run().render().to_string()),
        "fig7" => {
            let r = fig7::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "fig8" => {
            let r = fig8::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "fig9" => {
            let r = fig9::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "fig10" => {
            let r = fig10::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "fig11" => {
            let r = fig11::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "tlb" => {
            let r = tlb::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "pollution" => {
            let r = pollution::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "suite" => {
            let r = suite_summary::run(scale, pool);
            save(r.dataset())?;
            Ok(r.render())
        }
        "margin" => Ok(extensions::margin(scale, pool).render()),
        "adaptive" => Ok(extensions::adaptive(scale, pool).render()),
        "streams" => Ok(extensions::stream(scale, pool).render()),
        "latency" => Ok(sensitivity::latency(scale, pool).render()),
        "l2size" => Ok(sensitivity::l2size(scale, pool).render()),
        "backward" => Ok(extensions::backward(scale, pool).render()),
        "onecell" => Ok(onecell::run(scale, pool).render()),
        "tournament" => {
            let budgets: &[usize] = if budgets.is_empty() {
                &tournament::DEFAULT_BUDGETS
            } else {
                budgets
            };
            tournament::run(scale, pool, budgets).map(|t| t.render())
        }
        other => Err(format!("unknown experiment id: {other}")),
    }
}

/// Runs one experiment, catching panics when keep-going is active so a
/// failure in a non-grid experiment (or a grid bug) skips that id
/// instead of killing the whole run.
fn run_one_guarded(
    id: &str,
    scale: ExpScale,
    pool: &Pool,
    csv_dir: Option<&std::path::Path>,
    budgets: &[usize],
) -> Result<String, String> {
    if !context::keep_going() {
        return run_one(id, scale, pool, csv_dir, budgets);
    }
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_one(id, scale, pool, csv_dir, budgets)
    }));
    match res {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "experiment panicked".to_string());
            context::record_failure("(whole experiment)", &msg, 1);
            Ok(format!("experiment {id} failed: {msg}\n(skipped under --keep-going)\n"))
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExpScale::Quick;
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut jobs: Option<usize> = None;
    let mut fault_specs: Vec<FaultSpec> = Vec::new();
    let mut policy = RunPolicy::default();
    let mut trace = false;
    let mut trace_filter: Option<TraceFilter> = None;
    let mut metrics_window: Option<u64> = None;
    let mut profile_hist = false;
    let mut status_jsonl: Option<String> = None;
    let mut manifest_dir: Option<std::path::PathBuf> = None;
    let mut result_cache = true;
    let mut result_store_dir: Option<std::path::PathBuf> = None;
    let mut checkpoint_dir: Option<std::path::PathBuf> = None;
    let mut checkpoint_every: u64 = DEFAULT_CHECKPOINT_EVERY;
    let mut resume = false;
    let mut budgets: Vec<usize> = Vec::new();
    let mut expecting: Option<&str> = None;
    for a in &args {
        if let Some(flag) = expecting.take() {
            match flag {
                "--csv" => csv_dir = Some(std::path::PathBuf::from(a)),
                "--jobs" => match a.parse::<usize>() {
                    Ok(n) if n > 0 => jobs = Some(n),
                    _ => {
                        eprintln!("--jobs requires a positive integer, got {a:?}");
                        std::process::exit(2);
                    }
                },
                "--fault" => match FaultSpec::parse(a) {
                    Ok(spec) => fault_specs.push(spec),
                    Err(e) => {
                        eprintln!("bad --fault spec {a:?}: {e}");
                        eprintln!(
                            "expected corrupt:<bench>:<seed>[:<words>], \
                             unmap:<bench>:<seed>[:<pages>], or \
                             walk:<bench>:<period>[:demand]"
                        );
                        std::process::exit(2);
                    }
                },
                "--cell-timeout" => match a.parse::<u64>() {
                    Ok(n) if n > 0 => policy.timeout = Some(Duration::from_secs(n)),
                    _ => {
                        eprintln!("--cell-timeout requires a positive number of seconds, got {a:?}");
                        std::process::exit(2);
                    }
                },
                "--retries" => match a.parse::<u32>() {
                    Ok(n) if n > 0 => policy.max_attempts = n,
                    _ => {
                        eprintln!("--retries requires a positive integer, got {a:?}");
                        std::process::exit(2);
                    }
                },
                "--trace-filter" => match TraceFilter::parse(a) {
                    Ok(f) => {
                        trace = true;
                        trace_filter = Some(f);
                    }
                    Err(e) => {
                        eprintln!("bad --trace-filter spec {a:?}: {e}");
                        eprintln!("expected a comma-separated subset of vam,issue,drop,depth,rescan,mshr,fault (or: all)");
                        std::process::exit(2);
                    }
                },
                "--metrics-window" => match a.parse::<u64>() {
                    Ok(n) if n > 0 => metrics_window = Some(n),
                    _ => {
                        eprintln!("--metrics-window requires a positive number of uops, got {a:?}");
                        std::process::exit(2);
                    }
                },
                "--scale" => match ExpScale::parse(a) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("--scale requires one of smoke/quick/full/large/huge, got {a:?}");
                        std::process::exit(2);
                    }
                },
                "--budget" => match a.parse::<usize>() {
                    Ok(n) if n > 0 => budgets.push(n),
                    _ => {
                        eprintln!("--budget requires a positive number of bytes, got {a:?}");
                        std::process::exit(2);
                    }
                },
                "--emit-manifest" => manifest_dir = Some(std::path::PathBuf::from(a)),
                "--status-jsonl" => status_jsonl = Some(a.clone()),
                "--result-store" => result_store_dir = Some(std::path::PathBuf::from(a)),
                "--checkpoint-dir" => checkpoint_dir = Some(std::path::PathBuf::from(a)),
                "--checkpoint-every" => match a.parse::<u64>() {
                    Ok(n) if n > 0 => checkpoint_every = n,
                    _ => {
                        eprintln!("--checkpoint-every requires a positive number of cycles, got {a:?}");
                        std::process::exit(2);
                    }
                },
                _ => unreachable!("expecting only set for value-taking flags"),
            }
            continue;
        }
        match a.as_str() {
            "--smoke" => scale = ExpScale::Smoke,
            "--quick" => scale = ExpScale::Quick,
            "--full" => scale = ExpScale::Full,
            "--stream" => cdp_workloads::set_force_streaming(true),
            "--keep-going" => context::set_keep_going(true),
            "--trace" => trace = true,
            "--profile-hist" => profile_hist = true,
            "--verbose-timing" => context::set_verbose_timing(true),
            "--no-result-cache" => result_cache = false,
            "--no-fast-forward" => cdp_sim::set_fast_forward(false),
            "--resume" => resume = true,
            "--csv" | "--jobs" | "--fault" | "--cell-timeout" | "--retries"
            | "--trace-filter" | "--metrics-window" | "--scale" | "--emit-manifest"
            | "--status-jsonl" | "--result-store" | "--checkpoint-dir"
            | "--checkpoint-every" | "--budget" => {
                expecting = Some(a.as_str());
            }
            "all" => ids.extend(ALL.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if let Some(flag) = expecting {
        eprintln!("{flag} requires an argument");
        std::process::exit(2);
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments <id>... [--smoke|--quick|--full|--scale NAME] [--stream] \
             [--jobs N] [--csv <dir>]"
        );
        eprintln!(
            "       [--keep-going] [--fault SPEC]... [--cell-timeout SECS] [--retries N]"
        );
        eprintln!(
            "       [--emit-manifest <dir>] [--trace] [--trace-filter SPEC] \
             [--metrics-window UOPS] [--profile-hist] [--status-jsonl PATH|-] \
             [--verbose-timing] [--no-result-cache]"
        );
        eprintln!("       [--no-fast-forward] [--result-store <dir>]");
        eprintln!(
            "       [--checkpoint-dir <dir>] [--checkpoint-every CYCLES] [--resume]"
        );
        eprintln!("       [--budget BYTES]...  (tournament only; default 16KiB and 64KiB)");
        eprintln!(
            "ids: {} onecell tournament  (or: all, which excludes onecell and tournament)",
            ALL.join(" ")
        );
        eprintln!("exit codes: 0 ok, 2 usage, 3 partial failure under --keep-going");
        std::process::exit(2);
    }
    if (trace || metrics_window.is_some() || profile_hist) && manifest_dir.is_none() {
        eprintln!(
            "--trace/--trace-filter/--metrics-window/--profile-hist require --emit-manifest <dir>"
        );
        std::process::exit(2);
    }
    if (resume || checkpoint_every != DEFAULT_CHECKPOINT_EVERY) && checkpoint_dir.is_none() {
        eprintln!("--resume/--checkpoint-every require --checkpoint-dir <dir>");
        std::process::exit(2);
    }
    if result_store_dir.is_some() && !result_cache {
        eprintln!("--result-store requires the result cache (conflicts with --no-result-cache)");
        std::process::exit(2);
    }
    if let Some(dir) = checkpoint_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create checkpoint dir {}: {e}", dir.display());
            std::process::exit(2);
        }
        // Sweep stale .part files left behind by a killed predecessor so
        // resume scans only ever see published checkpoints.
        let swept = cdp_store::clean_stale_parts(&cdp_store::RealIo, &dir);
        if swept > 0 && context::verbose_timing() {
            eprintln!("checkpoint dir: swept {swept} stale .part file(s)");
        }
        context::set_checkpointing(Some(context::CheckpointSettings {
            dir,
            every: checkpoint_every,
            resume,
        }));
    }
    if let Some(dir) = &result_store_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create result store dir {}: {e}", dir.display());
            std::process::exit(2);
        }
        if let Err(e) = context::set_result_store(dir) {
            eprintln!("cannot open result store {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    if !fault_specs.is_empty() {
        context::set_fault_plan(FaultPlan { specs: fault_specs });
    }
    if policy != RunPolicy::default() {
        context::set_policy(policy);
    }
    if let Some(target) = &status_jsonl {
        // The stream is diagnostic and must never perturb stdout: `-`
        // routes it to stderr, anything else to a sidecar file.
        let out: Box<dyn std::io::Write + Send> = if target == "-" {
            Box::new(std::io::stderr())
        } else {
            match std::fs::File::create(target) {
                Ok(f) => Box::new(f),
                Err(e) => {
                    eprintln!("cannot create status stream file {target}: {e}");
                    std::process::exit(2);
                }
            }
        };
        cdp_sim::install_status_sink(cdp_sim::StatusSink::new(out));
    }
    if manifest_dir.is_some() {
        context::enable_obs(ObsConfig {
            trace: trace.then(|| TraceConfig {
                filter: trace_filter.unwrap_or_default(),
                ..TraceConfig::default()
            }),
            metrics_window,
            profile_hist,
        });
    }
    context::set_result_cache(result_cache);
    let pool = jobs.map_or_else(Pool::default, Pool::new);
    for id in ids {
        let t0 = Instant::now();
        context::set_current_experiment(&id);
        match run_one_guarded(&id, scale, &pool, csv_dir.as_deref(), &budgets) {
            Ok(text) => {
                // Wall time goes to stderr (and only under
                // --verbose-timing): stdout must be byte-identical at any
                // --jobs count. The manifest records it unconditionally.
                context::obs_record_experiment(&id, t0.elapsed().as_millis() as u64);
                if context::verbose_timing() {
                    eprintln!("{id}: {:.1?} ({} jobs)", t0.elapsed(), pool.jobs());
                }
                println!("================================================================");
                println!("== {id}  (scale: {scale:?})");
                println!("================================================================");
                println!("{text}");
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    if context::verbose_timing() {
        let (hits, misses) = context::result_cache_stats();
        eprintln!("result cache: {hits} hit(s), {misses} miss(es)");
        if result_store_dir.is_some() {
            let (s_hits, s_misses, s_quarantined) = context::result_store_stats();
            eprintln!(
                "result store: {s_hits} hit(s), {s_misses} miss(es), \
                 {s_quarantined} quarantined"
            );
        }
    }
    if let (Some(dir), Some(taken)) = (&manifest_dir, context::take_obs()) {
        match obs::write_artifacts(dir, scale.name(), pool.jobs(), &taken) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("manifest write failed under {}: {e}", dir.display());
                std::process::exit(2);
            }
        }
    }
    let failures = context::take_failures();
    if !failures.is_empty() {
        eprintln!();
        eprintln!("FAILURE REPORT: {} cell(s) failed", failures.len());
        for f in &failures {
            eprintln!(
                "  [{}] {}: {} ({} attempt(s))",
                f.experiment, f.cell, f.error, f.attempts
            );
        }
        eprintln!("exiting with code {EXIT_PARTIAL} (partial failure)");
        std::process::exit(EXIT_PARTIAL);
    }
}
