//! Table 1: the 4-GHz system configuration.

use cdp_types::SystemConfig;

/// Renders the simulated configuration in the paper's Table 1 layout.
pub fn run() -> String {
    format!(
        "Table 1: Performance model: 4-GHz system configuration\n\n{}\n",
        SystemConfig::asplos2002()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn contains_key_rows() {
        let t = super::run();
        assert!(t.contains("fetch 3, issue 3, retire 3"));
        assert!(t.contains("reorder 128, store 32, load 48"));
        assert!(t.contains("460 processor cycles"));
        assert!(t.contains("64 entry, 4-way associative"));
    }
}
