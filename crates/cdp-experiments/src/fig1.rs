//! Figure 1: non-cumulative MPTU trace on a 4 MB UL2 — the warm-up
//! methodology of §2.2.
//!
//! The paper runs one benchmark from each of the six suites, samples the
//! L2 miss rate in retired-uop windows, and picks the statistics-start
//! point where the cold-start transient has died out.

use cdp_sim::Simulator;
use cdp_types::SystemConfig;
use cdp_workloads::suite::Benchmark;

use crate::common::{ExpScale, WorkloadSet};

/// One benchmark's MPTU-over-time series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Benchmark name.
    pub name: String,
    /// Non-cumulative MPTU per window.
    pub samples: Vec<f64>,
}

/// The Figure 1 traces plus the derived warm-up recommendation.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// Retired-uop window width.
    pub window_uops: u64,
    /// One series per suite representative.
    pub series: Vec<Series>,
    /// First window index at which every series is within 2x of its
    /// steady-state mean (the "statistics may start here" point).
    pub steady_window: usize,
}

impl Figure1 {
    /// Renders the series as columns.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 1: non-cumulative MPTU trace, 4-MB UL2 (window = {} uops)\n\n",
            self.window_uops
        );
        let max_len = self.series.iter().map(|s| s.samples.len()).max().unwrap_or(0);
        out.push_str("window");
        for s in &self.series {
            out.push_str(&format!("  {:>13}", s.name));
        }
        out.push('\n');
        for w in 0..max_len {
            out.push_str(&format!("{w:>6}"));
            for s in &self.series {
                match s.samples.get(w) {
                    Some(v) => out.push_str(&format!("  {v:>13.2}")),
                    None => out.push_str(&format!("  {:>13}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "\ntransient dies out by window {} -> warm up for ~{} uops before collecting statistics\n",
            self.steady_window,
            self.steady_window as u64 * self.window_uops
        ));
        out
    }
}

/// Runs the six suite representatives on a 4 MB UL2 and samples windowed
/// MPTU.
pub fn run(scale: ExpScale) -> Figure1 {
    let s = scale.scale();
    let window = (s.target_uops as u64 / 24).max(500);
    let mut cfg = SystemConfig::asplos2002();
    cfg.ul2.size_bytes = 4 * 1024 * 1024; // the paper's Figure 1 uses 4 MB
    let mut series = Vec::new();
    let ws = WorkloadSet::default();
    for b in Benchmark::figure1_set() {
        let w = ws.get(b, s);
        let samples = Simulator::new(cfg.clone()).run_mptu_trace(&w, window);
        series.push(Series {
            name: b.name().to_string(),
            samples,
        });
    }
    // Steady point: first window from which every series stays within 2x
    // of the mean of its second half.
    let mut steady = 0usize;
    for s in &series {
        if s.samples.len() < 4 {
            continue;
        }
        let tail = &s.samples[s.samples.len() / 2..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        let bound = (2.0 * mean).max(mean + 1.0);
        let mut first_ok = 0;
        for (i, &v) in s.samples.iter().enumerate() {
            if v > bound {
                first_ok = i + 1;
            }
        }
        steady = steady.max(first_ok.min(s.samples.len().saturating_sub(1)));
    }
    Figure1 {
        window_uops: window,
        series,
        steady_window: steady,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_series_with_cold_start_transient() {
        let f = run(ExpScale::Smoke);
        assert_eq!(f.series.len(), 6);
        // At least one pointer-heavy series must show a cold-start spike:
        // first window above its tail mean.
        let spiky = f.series.iter().filter(|s| {
            let tail = &s.samples[s.samples.len() / 2..];
            let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
            s.samples.first().copied().unwrap_or(0.0) > mean
        });
        assert!(spiky.count() >= 3, "cold caches must show higher MPTU");
        assert!(f.render().contains("Figure 1"));
    }
}
