//! Shared experiment plumbing: run sizing, workload caching, and plain
//!-text table rendering.

use std::sync::Arc;

use cdp_sim::runner::{build_workload, with_warmup, DEFAULT_SEED};
use cdp_sim::{
    CheckpointSpec, CheckpointStatus, EngineCounters, JobOutcome, JobReport, Pool, RunStats,
    SimJob, Simulator, WorkloadCache,
};
use cdp_types::SystemConfig;
use cdp_workloads::suite::{Benchmark, Scale};
use cdp_workloads::Workload;

use crate::context;
use crate::obs::CellRecord;

/// How big an experiment run is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpScale {
    /// Minutes-scale smoke runs (CI / tests).
    Smoke,
    /// The default: every figure in a few minutes.
    Quick,
    /// Full runs (the EXPERIMENTS.md numbers).
    Full,
    /// Streaming-tier runs (~100M uops/cell); workloads above the
    /// streaming threshold synthesize uops on the fly with O(window)
    /// resident memory.
    Large,
    /// The top streaming tier (~1B uops/cell).
    Huge,
}

impl ExpScale {
    /// The workload scale.
    pub fn scale(self) -> Scale {
        match self {
            ExpScale::Smoke => Scale::smoke(),
            ExpScale::Quick => Scale::quick(),
            ExpScale::Full => Scale::full(),
            ExpScale::Large => Scale::large(),
            ExpScale::Huge => Scale::huge(),
        }
    }

    /// The scale's canonical lowercase name (inverse of
    /// [`ExpScale::parse`]; used by manifests).
    pub fn name(self) -> &'static str {
        match self {
            ExpScale::Smoke => "smoke",
            ExpScale::Quick => "quick",
            ExpScale::Full => "full",
            ExpScale::Large => "large",
            ExpScale::Huge => "huge",
        }
    }

    /// Parses `smoke` / `quick` / `full` / `large` / `huge`.
    pub fn parse(s: &str) -> Option<ExpScale> {
        match s {
            "smoke" => Some(ExpScale::Smoke),
            "quick" => Some(ExpScale::Quick),
            "full" => Some(ExpScale::Full),
            "large" => Some(ExpScale::Large),
            "huge" => Some(ExpScale::Huge),
            _ => None,
        }
    }
}

/// A benchmark workload cache: experiments run many configurations over
/// the same workloads; building each workload once matters.
///
/// Entries are keyed by `(Benchmark, Scale)` — a set holding a smoke
/// image never leaks it into a quick run — and handed out as shared
/// immutable [`Arc`]s so concurrent pool jobs reuse one image.
#[derive(Debug, Default)]
pub struct WorkloadSet {
    cache: WorkloadCache,
}

impl WorkloadSet {
    /// Builds (or reuses) the workload for `bench` at `scale`, applying
    /// the process-wide fault-injection plan (if any) to fresh builds.
    /// Builds are deterministic (fixed seed, seeded injection), so every
    /// cell of a benchmark sees the same — possibly faulted — image at
    /// any job count.
    pub fn get(&self, bench: Benchmark, scale: Scale) -> Arc<Workload> {
        self.cache.get_with(bench, scale, || {
            let mut w = build_workload(bench, scale);
            context::fault_plan().apply(bench.name(), &mut w);
            w
        })
    }
}

/// Runs `cfg` (with the §2.2 warm-up convention) on a cached workload.
pub fn run_cfg(ws: &WorkloadSet, cfg: &SystemConfig, bench: Benchmark, scale: Scale) -> RunStats {
    let cfg = with_warmup(cfg.clone(), scale);
    let w = ws.get(bench, scale);
    Simulator::new(cfg).run(&w)
}

/// Every prefetch engine's counters in one run, for the manifest's
/// cross-engine coverage/accuracy/wasted accounting.
fn engines(stats: &RunStats) -> impl Iterator<Item = &EngineCounters> {
    [
        &stats.mem.stride,
        &stats.mem.content,
        &stats.mem.markov,
        &stats.mem.delta,
        &stats.mem.jump,
    ]
    .into_iter()
}

/// One failed sweep cell of a [`run_grid_cells`] grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellFailure {
    /// The cell's grid label.
    pub label: String,
    /// Why it failed.
    pub error: String,
    /// Attempts consumed.
    pub attempts: u32,
}

/// Submits a labelled `(config, benchmark)` grid to the pool and returns
/// per-cell results in submission order, plus the cells that failed.
///
/// Every job gets the §2.2 warm-up convention and a shared workload
/// image from `ws`; workloads are pre-built serially so job timing never
/// depends on cache races. Jobs run under the process-wide retry/watchdog
/// policy, and benchmarks targeted by a walk-fault directive get the
/// injection attached.
///
/// In strict mode (the default) the first failing cell panics with its
/// typed error, preserving the historical fail-fast behavior. In
/// keep-going mode failing cells come back as `None` (an annotated gap
/// for the caller to render), are appended to the global failure report,
/// and every healthy cell still completes.
///
/// # Panics
///
/// Panics on the first failed cell unless keep-going mode is active.
pub fn run_grid_cells(
    pool: &Pool,
    ws: &WorkloadSet,
    scale: Scale,
    grid: Vec<(String, SystemConfig, Benchmark)>,
) -> (Vec<Option<RunStats>>, Vec<CellFailure>) {
    let plan = context::fault_plan();
    let collect = context::obs_enabled();
    let batch = context::obs_new_batch();
    let result_cache = context::result_cache();
    let checkpointing = context::checkpointing();
    let mut fingerprints = Vec::new();
    let mut checkpoint_statuses: Vec<Option<Arc<CheckpointStatus>>> = Vec::new();
    let jobs: Vec<SimJob> = grid
        .into_iter()
        .enumerate()
        .map(|(index, (label, cfg, bench))| {
            let cfg = with_warmup(cfg, scale);
            if collect {
                fingerprints.push(cdp_obs::fingerprint_hex(format!("{cfg:?}").as_bytes()));
            }
            let walk_fault = plan.walk_fault(bench.name());
            let mut job = SimJob::new(label, cfg, ws.get(bench, scale));
            if let Some(wf) = walk_fault {
                job = job.with_walk_fault(wf);
            }
            // The cell key covers everything behavior-affecting: the
            // warmed-up config, the workload identity (benchmark +
            // scale + seed, which determine the deterministic build),
            // and any injected walk fault. The fault *plan* also
            // mutates workload images, but it does so identically for
            // every cell of a (bench, scale) in this process, so
            // equal keys still mean equal results. The result cache and
            // the checkpoint files share it.
            let key = cdp_obs::fingerprint(
                format!(
                    "{:?}|{}|{}/{}|{}|{:?}",
                    job.cfg,
                    bench.name(),
                    scale.target_uops,
                    scale.footprint_div,
                    SEED,
                    walk_fault,
                )
                .as_bytes(),
            );
            if let Some(cache) = &result_cache {
                job = job.with_result_cache(Arc::clone(cache), key);
            }
            if let Some(ck) = &checkpointing {
                let status = CheckpointStatus::shared();
                checkpoint_statuses.push(Some(Arc::clone(&status)));
                job = job.with_checkpoint(CheckpointSpec {
                    dir: ck.dir.clone(),
                    every: ck.every,
                    key,
                    resume: ck.resume,
                    status: Some(status),
                    io: None,
                });
            } else {
                checkpoint_statuses.push(None);
            }
            if let Some(obs) = context::obs_job_attachment(batch, index) {
                job = job.with_obs(obs);
            }
            job
        })
        .collect();
    let experiment = context::current_experiment();
    let mut cells = Vec::new();
    let mut failures = Vec::new();
    for (index, report) in pool
        .run_sims_profiled(jobs, context::policy())
        .into_iter()
        .enumerate()
    {
        let JobReport {
            label,
            outcome,
            wall,
        } = report;
        if collect {
            context::obs_record_cell(CellRecord {
                experiment: experiment.clone(),
                label: label.clone(),
                status: match &outcome {
                    JobOutcome::Ok(_) => "ok",
                    JobOutcome::Failed { .. } => "failed",
                    JobOutcome::TimedOut { .. } => "timeout",
                },
                attempts: outcome.attempts(),
                wall_ms: wall.as_millis() as u64,
                config_fingerprint: fingerprints[index].clone(),
                checkpoint: checkpoint_statuses[index]
                    .as_ref()
                    .map_or("off", |s| s.get().as_str()),
                retired: match &outcome {
                    JobOutcome::Ok(stats) => stats.retired,
                    _ => 0,
                },
                pf_issued: match &outcome {
                    JobOutcome::Ok(stats) => engines(stats).map(|e| e.issued).sum(),
                    _ => 0,
                },
                pf_useful: match &outcome {
                    JobOutcome::Ok(stats) => engines(stats).map(EngineCounters::useful).sum(),
                    _ => 0,
                },
                pf_wasted: match &outcome {
                    JobOutcome::Ok(stats) => engines(stats).map(|e| e.wasted_evictions).sum(),
                    _ => 0,
                },
            });
        }
        match outcome {
            JobOutcome::Ok(stats) => cells.push(Some(stats)),
            other => {
                let attempts = other.attempts();
                let error = other
                    .failure()
                    .expect("non-Ok outcomes always describe their failure");
                if !context::keep_going() {
                    panic!("cell {label}: {error}");
                }
                context::record_failure(&label, &error, attempts);
                failures.push(CellFailure {
                    label,
                    error,
                    attempts,
                });
                cells.push(None);
            }
        }
    }
    // Fold each cell's dropped checkpoint writes into the run-wide
    // total: best-effort writes, but the manifest must not hide them.
    let dropped: u64 = checkpoint_statuses
        .iter()
        .flatten()
        .map(|s| s.dropped_writes())
        .sum();
    if dropped > 0 {
        context::add_checkpoint_dropped_writes(dropped);
    }
    (cells, failures)
}

/// The gap marker rendered for a failed sweep cell.
pub const GAP: &str = "--";

/// Formats an optional cell value, rendering `None` as the [`GAP`]
/// marker.
pub fn opt_cell<T>(v: Option<T>, fmt: impl FnOnce(T) -> String) -> String {
    v.map_or_else(|| GAP.to_string(), fmt)
}

/// The arithmetic mean, or `None` if any contributing cell is missing
/// (a suite average over a partial suite would not be comparable to the
/// paper's number, so it gaps out too).
pub fn mean_if_complete(values: &[Option<f64>]) -> Option<f64> {
    let mut sum = 0.0;
    for v in values {
        sum += (*v)?;
    }
    if values.is_empty() {
        Some(0.0)
    } else {
        Some(sum / values.len() as f64)
    }
}

/// Renders the per-experiment failure annotation appended below a table
/// that contains gaps. Empty (and therefore byte-invisible) when no cell
/// failed.
pub fn failure_note(failures: &[CellFailure]) -> String {
    if failures.is_empty() {
        return String::new();
    }
    let mut out = format!(
        "\n{} cell(s) failed and render as \"{GAP}\":\n",
        failures.len()
    );
    for f in failures {
        out.push_str(&format!(
            "  {}: {} [{} attempt(s)]\n",
            f.label, f.error, f.attempts
        ));
    }
    out
}

/// The experiment seed (re-exported for the few experiments that build
/// custom structures).
pub const SEED: u64 = DEFAULT_SEED;

/// Renders a plain-text table: header row + aligned columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            // Right-align numeric-looking cells, left-align the first column.
            if i == 0 {
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            } else {
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
        }
        line
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// The paper's "best coverage/accuracy trade-off" rule: among the points
/// whose coverage is within one percentage point of the maximum, pick the
/// most accurate (coverage is the scarce resource; accuracy is the
/// tie-breaker).
pub fn best_tradeoff(points: &[(f64, f64)]) -> usize {
    let max_cov = points.iter().map(|p| p.0).fold(0.0, f64::max);
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.0 >= max_cov - 0.01)
        .max_by(|(_, a), (_, b)| a.1.partial_cmp(&b.1).expect("finite accuracy"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Renders a horizontal ASCII bar scaled so `max_value` fills `width`
/// characters (values clamp into `[0, max_value]`).
pub fn ascii_bar(value: f64, max_value: f64, width: usize) -> String {
    if max_value <= 0.0 || width == 0 {
        return String::new();
    }
    let frac = (value / max_value).clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    let mut bar = "#".repeat(filled);
    bar.push_str(&" ".repeat(width - filled));
    bar
}

/// Formats a ratio as the paper's speedup convention (e.g. `1.126`).
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.3}")
}

/// Formats a fraction as a percentage (e.g. `12.6%`).
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse() {
        assert_eq!(ExpScale::parse("quick"), Some(ExpScale::Quick));
        assert_eq!(ExpScale::parse("large"), Some(ExpScale::Large));
        assert_eq!(ExpScale::parse("huge"), Some(ExpScale::Huge));
        assert_eq!(ExpScale::parse("bogus"), None);
        assert_eq!(ExpScale::parse(ExpScale::Large.name()), Some(ExpScale::Large));
        assert!(ExpScale::Large.scale().target_uops > ExpScale::Full.scale().target_uops);
        assert!(ExpScale::Huge.scale().target_uops > ExpScale::Large.scale().target_uops);
    }

    #[test]
    fn workload_set_caches() {
        let ws = WorkloadSet::default();
        let a = ws.get(Benchmark::B2e, Scale::smoke());
        let b = ws.get(Benchmark::B2e, Scale::smoke());
        assert!(Arc::ptr_eq(&a, &b), "same key shares one image");
    }

    #[test]
    fn workload_set_is_keyed_by_scale_too() {
        // Regression test: the cache used to key on Benchmark alone, so
        // a set that had served a smoke-scale image would silently hand
        // it back for a quick-scale request.
        let ws = WorkloadSet::default();
        let smoke = ws.get(Benchmark::B2e, Scale::smoke());
        let quick = ws.get(Benchmark::B2e, Scale::quick());
        assert!(!Arc::ptr_eq(&smoke, &quick));
        assert!(
            quick.program.len() > smoke.program.len(),
            "quick image must be the bigger build: {} vs {}",
            quick.program.len(),
            smoke.program.len()
        );
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["name", "x"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "22.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("a     "));
    }

    #[test]
    fn bars() {
        assert_eq!(ascii_bar(0.5, 1.0, 4), "##  ");
        assert_eq!(ascii_bar(2.0, 1.0, 4), "####", "clamps above max");
        assert_eq!(ascii_bar(-1.0, 1.0, 4), "    ", "clamps below zero");
        assert_eq!(ascii_bar(1.0, 0.0, 4), "", "degenerate max");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_speedup(1.1264), "1.126");
        assert_eq!(fmt_pct(0.126), "12.6%");
    }
}
