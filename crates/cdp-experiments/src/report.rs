//! CSV export for experiment results.
//!
//! Every data-bearing experiment can render itself as `(filename,
//! headers, rows)`; the `experiments` binary writes these under
//! `--csv <dir>` so the figures can be re-plotted with external tools.

use std::io::Write;
use std::path::Path;

/// A tabular dataset ready for CSV serialization.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    /// Output file name (e.g. `fig9.csv`).
    pub filename: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified cells).
    pub rows: Vec<Vec<String>>,
}

impl Dataset {
    /// Builds a dataset.
    pub fn new(
        filename: impl Into<String>,
        headers: Vec<String>,
        rows: Vec<Vec<String>>,
    ) -> Self {
        Dataset {
            filename: filename.into(),
            headers,
            rows,
        }
    }

    /// Serializes to CSV text (RFC-4180-style quoting for cells containing
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        fn cell(c: &str) -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(&self.filename);
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Implemented by experiment results that can export their data.
pub trait ToDataset {
    /// The experiment's tabular data.
    fn dataset(&self) -> Dataset;
}

/// Formats an optional cell; a failed (gapped) cell becomes an empty CSV
/// field so plotting tools skip it instead of reading a sentinel.
fn opt<T>(v: Option<T>, fmt: impl FnOnce(T) -> String) -> String {
    v.map(fmt).unwrap_or_default()
}

impl ToDataset for crate::table2::Table2 {
    fn dataset(&self) -> Dataset {
        Dataset::new(
            "table2.csv",
            vec![
                "benchmark".into(),
                "suite".into(),
                "uops".into(),
                "mptu_1mb".into(),
                "mptu_4mb".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        r.suite.clone(),
                        opt(r.uops, |u| u.to_string()),
                        opt(r.mptu_1mb, |m| format!("{m:.4}")),
                        opt(r.mptu_4mb, |m| format!("{m:.4}")),
                    ]
                })
                .collect(),
        )
    }
}

impl ToDataset for crate::fig1::Figure1 {
    fn dataset(&self) -> Dataset {
        let mut headers = vec!["window".to_string()];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        let max_len = self.series.iter().map(|s| s.samples.len()).max().unwrap_or(0);
        let rows = (0..max_len)
            .map(|w| {
                let mut row = vec![w.to_string()];
                row.extend(self.series.iter().map(|s| {
                    s.samples
                        .get(w)
                        .map(|v| format!("{v:.4}"))
                        .unwrap_or_default()
                }));
                row
            })
            .collect();
        Dataset::new("fig1.csv", headers, rows)
    }
}

impl ToDataset for crate::fig7::Figure7 {
    fn dataset(&self) -> Dataset {
        Dataset::new(
            "fig7.csv",
            vec!["config".into(), "coverage".into(), "accuracy".into()],
            self.points
                .iter()
                .map(|p| {
                    vec![
                        p.label.clone(),
                        opt(p.coverage, |c| format!("{c:.4}")),
                        opt(p.accuracy, |a| format!("{a:.4}")),
                    ]
                })
                .collect(),
        )
    }
}

impl ToDataset for crate::fig8::Figure8 {
    fn dataset(&self) -> Dataset {
        Dataset::new(
            "fig8.csv",
            vec!["config".into(), "coverage".into(), "accuracy".into()],
            self.points
                .iter()
                .map(|p| {
                    vec![
                        p.label.clone(),
                        opt(p.coverage, |c| format!("{c:.4}")),
                        opt(p.accuracy, |a| format!("{a:.4}")),
                    ]
                })
                .collect(),
        )
    }
}

impl ToDataset for crate::fig9::Figure9 {
    fn dataset(&self) -> Dataset {
        let mut headers = vec!["p_n".to_string()];
        headers.extend(self.curves.iter().map(|c| c.label()));
        let rows = crate::fig9::WIDTH_AXIS
            .iter()
            .enumerate()
            .map(|(w, (p, n))| {
                let mut row = vec![format!("p{p}.n{n}")];
                row.extend(
                    self.curves
                        .iter()
                        .map(|c| opt(c.speedups[w], |s| format!("{s:.4}"))),
                );
                row
            })
            .collect();
        Dataset::new("fig9.csv", headers, rows)
    }
}

impl ToDataset for crate::fig10::Figure10 {
    fn dataset(&self) -> Dataset {
        Dataset::new(
            "fig10.csv",
            vec![
                "benchmark".into(),
                "str_full".into(),
                "str_part".into(),
                "cpf_full".into(),
                "cpf_part".into(),
                "ul2_miss".into(),
                "speedup".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    let mut row = vec![r.name.clone()];
                    match &r.data {
                        Some(d) => {
                            row.extend(d.fractions.iter().map(|f| format!("{f:.4}")));
                            row.push(format!("{:.4}", d.speedup));
                        }
                        None => row.extend(std::iter::repeat_n(String::new(), 6)),
                    }
                    row
                })
                .collect(),
        )
    }
}

impl ToDataset for crate::fig11::Figure11 {
    fn dataset(&self) -> Dataset {
        Dataset::new(
            "fig11.csv",
            vec!["configuration".into(), "speedup".into()],
            self.configs
                .iter()
                .map(|c| vec![c.name.clone(), opt(c.speedup, |s| format!("{s:.4}"))])
                .collect(),
        )
    }
}

impl ToDataset for crate::tlb::TlbSweep {
    fn dataset(&self) -> Dataset {
        Dataset::new(
            "tlb.csv",
            vec!["dtlb_entries".into(), "speedup".into()],
            self.points
                .iter()
                .map(|p| vec![p.entries.to_string(), opt(p.speedup, |s| format!("{s:.4}"))])
                .collect(),
        )
    }
}

impl ToDataset for crate::pollution::Pollution {
    fn dataset(&self) -> Dataset {
        Dataset::new(
            "pollution.csv",
            vec!["benchmark".into(), "speedup".into(), "injected".into()],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        format!("{:.4}", r.speedup),
                        r.injected.to_string(),
                    ]
                })
                .collect(),
        )
    }
}

impl ToDataset for crate::suite_summary::SuiteSummary {
    fn dataset(&self) -> Dataset {
        Dataset::new(
            "suite.csv",
            vec![
                "benchmark".into(),
                "mptu".into(),
                "ipc".into(),
                "stateless".into(),
                "reinforced".into(),
            ],
            self.rows
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        opt(r.mptu, |m| format!("{m:.4}")),
                        opt(r.ipc, |i| format!("{i:.4}")),
                        opt(r.speedup_stateless, |s| format!("{s:.4}")),
                        opt(r.speedup_reinf, |s| format!("{s:.4}")),
                    ]
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escaping() {
        let d = Dataset::new(
            "t.csv",
            vec!["a".into(), "b,c".into()],
            vec![vec!["x\"y".into(), "plain".into()]],
        );
        let csv = d.to_csv();
        assert!(csv.starts_with("a,\"b,c\"\n"));
        assert!(csv.contains("\"x\"\"y\",plain"));
    }

    #[test]
    fn table2_dataset_shape() {
        let t = crate::table2::run(crate::ExpScale::Smoke, &cdp_sim::Pool::new(2));
        let d = t.dataset();
        assert_eq!(d.headers.len(), 5);
        assert_eq!(d.rows.len(), 15);
        assert_eq!(d.filename, "table2.csv");
        assert_eq!(d.to_csv().lines().count(), 16);
    }

    #[test]
    fn write_roundtrip() {
        let d = Dataset::new(
            "roundtrip.csv",
            vec!["x".into()],
            vec![vec!["1".into()], vec!["2".into()]],
        );
        let dir = std::env::temp_dir().join("cdp-report-test");
        let path = d.write_to(&dir).expect("write");
        let read = std::fs::read_to_string(&path).expect("read");
        assert_eq!(read, "x\n1\n2\n");
        let _ = std::fs::remove_file(path);
    }
}
