//! Extension experiments beyond the paper's figures:
//!
//! * [`margin`] — the Figure 4(c) rescan-margin ablation. The paper shows
//!   the margin-2 variant halving rescan traffic but does not sweep it;
//!   this experiment measures rescans and speedup for margins 1–3.
//! * [`adaptive`] — the §4.1 future work: fixed tuned knobs versus the
//!   run-time hill-climbing controller, per benchmark.
//! * [`stream`] — the reference-\[11\] baseline: stride versus stream
//!   buffers versus content prefetching on the pointer subset.

use cdp_sim::runner::pointer_subset;
use cdp_sim::{speedup, Pool};
use cdp_types::{AdaptiveConfig, ContentConfig, StreamConfig, SystemConfig};
use cdp_workloads::suite::Benchmark;

use crate::common::{
    failure_note, mean_if_complete, opt_cell, render_table, run_grid_cells, CellFailure, ExpScale,
    WorkloadSet,
};

/// One margin point.
#[derive(Clone, Debug)]
pub struct MarginPoint {
    /// Rescan margin (Figure 4(b) = 1, Figure 4(c) = 2).
    pub margin: u8,
    /// Suite-average speedup; `None` when any contributing cell failed.
    pub speedup: Option<f64>,
    /// Total rescans across the subset; `None` on a partial subset.
    pub rescans: Option<u64>,
}

/// The margin ablation result.
#[derive(Clone, Debug)]
pub struct MarginAblation {
    /// Margins 1..=3.
    pub points: Vec<MarginPoint>,
    /// Cells that failed (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

impl MarginAblation {
    /// Renders the ablation.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Extension: reinforcement rescan-margin ablation (Figure 4(b)/(c))\n\n",
        );
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.margin.to_string(),
                    opt_cell(p.speedup, |s| format!("{s:.3}")),
                    opt_cell(p.rescans, |r| r.to_string()),
                ]
            })
            .collect();
        out.push_str(&render_table(&["margin", "speedup", "rescans"], &rows));
        if let (Some(m1), Some(m2)) = (
            self.points.first().and_then(|p| p.rescans),
            self.points.get(1).and_then(|p| p.rescans),
        ) {
            if m1 > 0 {
                out.push_str(&format!(
                    "\nmargin 2 performs {:.0}% of margin 1's rescans (paper: ~50%)\n",
                    m2 as f64 / m1 as f64 * 100.0
                ));
            }
        }
        out.push_str(&failure_note(&self.failures));
        out
    }
}

/// Runs the margin ablation on the pointer subset (one flat pooled
/// grid: margins x benchmarks).
pub fn margin(scale: ExpScale, pool: &Pool) -> MarginAblation {
    let s = scale.scale();
    let benches = pointer_subset();
    let ws = WorkloadSet::default();
    let base_cfg = SystemConfig::asplos2002();
    let (baselines, mut failures) = run_grid_cells(
        pool,
        &ws,
        s,
        benches
            .iter()
            .map(|&b| (format!("base/{}", b.name()), base_cfg.clone(), b))
            .collect(),
    );
    let margins = [1u8, 2, 3];
    let mut grid = Vec::new();
    for &margin in &margins {
        let mut cfg = SystemConfig::asplos2002();
        cfg.prefetchers.content = Some(ContentConfig {
            reinforcement_margin: margin,
            ..ContentConfig::tuned()
        });
        for &b in &benches {
            grid.push((format!("m{margin}/{}", b.name()), cfg.clone(), b));
        }
    }
    let (runs, grid_failures) = run_grid_cells(pool, &ws, s, grid);
    failures.extend(grid_failures);
    let points = margins
        .iter()
        .zip(runs.chunks(benches.len()))
        .map(|(&margin, chunk)| {
            let sps: Vec<Option<f64>> = chunk
                .iter()
                .zip(&baselines)
                .map(|(r, base)| match (r, base) {
                    (Some(r), Some(base)) => Some(speedup(base, r)),
                    _ => None,
                })
                .collect();
            let rescans = chunk
                .iter()
                .map(|r| r.as_ref().map(|r| r.mem.rescans))
                .try_fold(0u64, |acc, r| r.map(|r| acc + r));
            MarginPoint {
                margin,
                speedup: mean_if_complete(&sps),
                rescans,
            }
        })
        .collect();
    MarginAblation { points, failures }
}

/// One adaptive-vs-fixed row.
#[derive(Clone, Debug)]
pub struct AdaptiveRow {
    /// Benchmark name.
    pub name: String,
    /// Fixed tuned-knob speedup; `None` if a contributing cell failed.
    pub fixed: Option<f64>,
    /// Adaptive-controller speedup; `None` if a contributing cell failed.
    pub adaptive: Option<f64>,
    /// Knob state the controller steered to (`N` compare bits, `n` width).
    pub steered_to: String,
}

/// The adaptive study result.
#[derive(Clone, Debug)]
pub struct AdaptiveStudy {
    /// Per-benchmark rows.
    pub rows: Vec<AdaptiveRow>,
    /// Averages (fixed, adaptive); `None` on a partial subset.
    pub averages: (Option<f64>, Option<f64>),
    /// Cells that failed (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

impl AdaptiveStudy {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Extension: run-time adaptive VAM knobs (§4.1 future work) vs fixed tuning\n\n",
        );
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    opt_cell(r.fixed, |s| format!("{s:.3}")),
                    opt_cell(r.adaptive, |s| format!("{s:.3}")),
                    r.steered_to.clone(),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["Benchmark", "fixed", "adaptive", "steered to"],
            &rows,
        ));
        out.push_str(&format!(
            "\naverages: fixed {}, adaptive {}\n",
            opt_cell(self.averages.0, |s| format!("{s:.3}")),
            opt_cell(self.averages.1, |s| format!("{s:.3}"))
        ));
        out.push_str(&failure_note(&self.failures));
        out
    }
}

/// Runs fixed vs adaptive over a mixed subset (pointer-heavy plus two
/// low-MPTU codes where aggressive knobs have nothing to win).
pub fn adaptive(scale: ExpScale, pool: &Pool) -> AdaptiveStudy {
    let s = scale.scale();
    let mut benches = pointer_subset();
    benches.push(Benchmark::B2e);
    benches.push(Benchmark::Quake);
    let base_cfg = SystemConfig::asplos2002();
    let fixed_cfg = SystemConfig::with_content();
    let mut adaptive_cfg = SystemConfig::with_content();
    adaptive_cfg.prefetchers.adaptive = Some(AdaptiveConfig::default());
    let ws = WorkloadSet::default();
    let mut grid = Vec::new();
    for &b in &benches {
        grid.push((format!("base/{}", b.name()), base_cfg.clone(), b));
        grid.push((format!("fixed/{}", b.name()), fixed_cfg.clone(), b));
        grid.push((format!("adaptive/{}", b.name()), adaptive_cfg.clone(), b));
    }
    let (runs, failures) = run_grid_cells(pool, &ws, s, grid);
    let mut rows = Vec::new();
    for (&b, trio) in benches.iter().zip(runs.chunks(3)) {
        let (base, fixed, adapt) = (&trio[0], &trio[1], &trio[2]);
        let steered = adapt
            .as_ref()
            .and_then(|a| a.adaptive)
            .map(|(_, c)| format!("N={} n={}", c.vam.compare_bits, c.next_lines))
            .unwrap_or_default();
        rows.push(AdaptiveRow {
            name: b.name().to_string(),
            fixed: match (base, fixed) {
                (Some(base), Some(fixed)) => Some(speedup(base, fixed)),
                _ => None,
            },
            adaptive: match (base, adapt) {
                (Some(base), Some(adapt)) => Some(speedup(base, adapt)),
                _ => None,
            },
            steered_to: steered,
        });
    }
    let averages = (
        mean_if_complete(&rows.iter().map(|r| r.fixed).collect::<Vec<_>>()),
        mean_if_complete(&rows.iter().map(|r| r.adaptive).collect::<Vec<_>>()),
    );
    AdaptiveStudy {
        rows,
        averages,
        failures,
    }
}

/// One stream-comparison row.
#[derive(Clone, Debug)]
pub struct StreamRow {
    /// Benchmark name.
    pub name: String,
    /// Stride-only baseline is 1.0 by definition; these are relative.
    /// `None` if a contributing cell failed.
    pub stream_buffers: Option<f64>,
    /// Content prefetcher speedup; `None` if a contributing cell failed.
    pub content: Option<f64>,
}

/// The stream-buffer comparison.
#[derive(Clone, Debug)]
pub struct StreamStudy {
    /// Per-benchmark rows.
    pub rows: Vec<StreamRow>,
    /// Cells that failed (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

impl StreamStudy {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Extension: stream buffers (reference [11]) vs content prefetching\n(speedup over the stride baseline)\n\n",
        );
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    opt_cell(r.stream_buffers, |s| format!("{s:.3}")),
                    opt_cell(r.content, |s| format!("{s:.3}")),
                ]
            })
            .collect();
        out.push_str(&render_table(&["Benchmark", "+streams", "+content"], &rows));
        out.push_str(&failure_note(&self.failures));
        out
    }
}

/// Runs stride vs stride+streams vs stride+content on the pointer subset.
pub fn stream(scale: ExpScale, pool: &Pool) -> StreamStudy {
    let s = scale.scale();
    let benches = pointer_subset();
    let base_cfg = SystemConfig::asplos2002();
    let mut stream_cfg = SystemConfig::asplos2002();
    stream_cfg.prefetchers.stream = Some(StreamConfig::default());
    let content_cfg = SystemConfig::with_content();
    let ws = WorkloadSet::default();
    let mut grid = Vec::new();
    for &b in &benches {
        grid.push((format!("base/{}", b.name()), base_cfg.clone(), b));
        grid.push((format!("streams/{}", b.name()), stream_cfg.clone(), b));
        grid.push((format!("content/{}", b.name()), content_cfg.clone(), b));
    }
    let (runs, failures) = run_grid_cells(pool, &ws, s, grid);
    let rows = benches
        .iter()
        .zip(runs.chunks(3))
        .map(|(&b, trio)| StreamRow {
            name: b.name().to_string(),
            stream_buffers: match (&trio[0], &trio[1]) {
                (Some(base), Some(st)) => Some(speedup(base, st)),
                _ => None,
            },
            content: match (&trio[0], &trio[2]) {
                (Some(base), Some(c)) => Some(speedup(base, c)),
                _ => None,
            },
        })
        .collect();
    StreamStudy { rows, failures }
}

/// One traversal-direction row of the backward study.
#[derive(Clone, Debug)]
pub struct BackwardRow {
    /// Traversal direction.
    pub direction: &'static str,
    /// Speedup with previous-line width (p2.n0).
    pub prev_width: f64,
    /// Speedup with next-line width (p0.n2).
    pub next_width: f64,
}

/// The backward-traversal width study.
#[derive(Clone, Debug)]
pub struct BackwardStudy {
    /// Forward and backward rows.
    pub rows: Vec<BackwardRow>,
}

impl BackwardStudy {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Extension: width direction vs traversal direction (doubly linked list)
             (equal bandwidth: two previous lines vs two next lines)

",
        );
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.direction.to_string(),
                    format!("{:.3}", r.prev_width),
                    format!("{:.3}", r.next_width),
                ]
            })
            .collect();
        out.push_str(&render_table(&["traversal", "p2.n0", "p0.n2"], &rows));
        out.push_str(
            "\nFinding: width direction is immaterial on doubly linked lists in \
             either traversal direction, because the VAM heuristic chases both \
             the next and prev pointers out of every fill -- the chain, not the \
             width, covers the traversal. This generalizes Figure 9's result \
             that previous-line width buys nothing: backward-regular walks are \
             stride-predictable, and backward-irregular walks are chain-covered.\n",
        );
        out
    }
}

/// Builds a doubly-linked-list workload traversed in one direction and
/// measures previous-line vs next-line width at equal bandwidth. The
/// six simulations (2 directions x 3 configurations) run as pool tasks
/// over shared workload images.
pub fn backward(scale: ExpScale, pool: &Pool) -> BackwardStudy {
    use cdp_mem::AddressSpace;
    use cdp_types::rng::Rng;
    use cdp_workloads::structures::build_dlist;
    use cdp_workloads::suite::{Suite, Workload};
    use cdp_workloads::{Heap, TraceBuilder};

    let uops = scale.scale().target_uops / 2;
    let build = |forward: bool| -> Workload {
        let mut space = AddressSpace::new();
        let mut heap = Heap::new(Heap::DEFAULT_BASE, 1 << 25).with_padding(8);
        let mut rng = Rng::seed_from_u64(0xd11d);
        let dl = build_dlist(&mut space, &mut heap, &mut rng, 60_000, 32, true);
        let mut tb = TraceBuilder::new();
        while tb.len() < uops {
            let seg = 512usize;
            if forward {
                let start = rng.gen_range_usize(0..dl.nodes.len() - seg);
                tb.chase(1, &dl.nodes[start..start + seg], 0, 12);
            } else {
                let start = rng.gen_range_usize(seg..dl.nodes.len());
                tb.chase_back(1, &dl, start, seg, 12);
            }
            tb.alu_burst(5, 64);
        }
        Workload {
            name: format!("dlist-{}", if forward { "forward" } else { "backward" }),
            suite: Suite::Workstation,
            program: tb.build(),
            space,
            stream: None,
        }
    };

    let width_cfg = |prev: u32, next: u32| {
        let mut cfg = SystemConfig::asplos2002();
        cfg.prefetchers.content = Some(ContentConfig {
            prev_lines: prev,
            next_lines: next,
            ..ContentConfig::tuned()
        });
        cfg
    };

    let directions = [("forward", true), ("backward", false)];
    let workloads: Vec<std::sync::Arc<Workload>> = directions
        .iter()
        .map(|&(_, forward)| std::sync::Arc::new(build(forward)))
        .collect();
    let mut tasks: Vec<Box<dyn FnOnce() -> f64 + Send>> = Vec::new();
    for w in &workloads {
        for cfg in [SystemConfig::asplos2002(), width_cfg(2, 0), width_cfg(0, 2)] {
            let w = std::sync::Arc::clone(w);
            tasks.push(Box::new(move || {
                cdp_sim::Simulator::new(cfg).run(&w).cycles as f64
            }));
        }
    }
    let cycles = pool.run(tasks);
    let rows = directions
        .iter()
        .zip(cycles.chunks(3))
        .map(|(&(direction, _), trio)| BackwardRow {
            direction,
            prev_width: trio[0] / trio[1],
            next_width: trio[0] / trio[2],
        })
        .collect();
    BackwardStudy { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_sim::metrics::mean;

    #[test]
    fn margin_two_cuts_rescans() {
        let m = margin(ExpScale::Smoke, &Pool::new(2));
        assert_eq!(m.points.len(), 3);
        assert!(m.failures.is_empty());
        let (r1, r2) = (
            m.points[0].rescans.expect("healthy run"),
            m.points[1].rescans.expect("healthy run"),
        );
        assert!(r2 < r1, "margin 2 must rescan less: {r2} vs {r1}");
        assert!(m.render().contains("margin"));
    }

    #[test]
    fn adaptive_study_runs() {
        let a = adaptive(ExpScale::Smoke, &Pool::new(2));
        assert_eq!(a.rows.len(), 6);
        assert!(a.failures.is_empty());
        for r in &a.rows {
            assert!(!r.steered_to.is_empty(), "{}", r.name);
        }
        assert!(a.render().contains("steered"));
    }

    #[test]
    fn width_direction_is_immaterial_on_dlists() {
        // The chain covers both traversal directions (VAM finds next AND
        // prev pointers), so p2.n0 and p0.n2 land close together.
        let st = backward(ExpScale::Smoke, &Pool::new(2));
        assert_eq!(st.rows.len(), 2);
        for r in &st.rows {
            assert!(
                (r.prev_width - r.next_width).abs() < 0.25,
                "{}: p2 {:.3} vs n2 {:.3} should be close",
                r.direction,
                r.prev_width,
                r.next_width
            );
            assert!(r.prev_width > 1.0 && r.next_width > 1.0, "{}", r.direction);
        }
        assert!(st.render().contains("chain, not the"));
    }

    #[test]
    fn content_beats_streams_on_pointer_subset() {
        let s = stream(ExpScale::Smoke, &Pool::new(2));
        assert!(s.failures.is_empty());
        let avg_stream = mean(
            &s.rows
                .iter()
                .map(|r| r.stream_buffers.expect("healthy run"))
                .collect::<Vec<_>>(),
        );
        let avg_content = mean(
            &s.rows
                .iter()
                .map(|r| r.content.expect("healthy run"))
                .collect::<Vec<_>>(),
        );
        assert!(
            avg_content > avg_stream - 0.02,
            "content {avg_content:.3} vs streams {avg_stream:.3}"
        );
    }
}
