//! A single-cell scale driver: one benchmark, one configuration, run
//! through the full sweep machinery (workload cache, result cache,
//! checkpointing, heartbeats, manifest records).
//!
//! Exists for the streaming tiers: a whole-figure grid at `--scale
//! large` or `huge` takes hours, but CI and the throughput benchmarks
//! only need one representative cell to prove the tier completes with
//! bounded memory and to measure uop throughput. The cell goes through
//! [`run_grid_cells`] like any sweep cell, so a manifest emitted around
//! it carries the usual `retired`/`muops` accounting.

use cdp_sim::{Pool, RunStats};
use cdp_types::SystemConfig;
use cdp_workloads::Benchmark;

use crate::common::{failure_note, render_table, run_grid_cells, CellFailure, ExpScale, WorkloadSet};

/// The single-cell run's result.
#[derive(Clone, Debug)]
pub struct OneCell {
    /// The benchmark the cell ran.
    pub bench: Benchmark,
    /// The tier it ran at.
    pub scale: ExpScale,
    /// The cell's stats; `None` when it failed under keep-going.
    pub stats: Option<RunStats>,
    /// Failure detail (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

impl OneCell {
    /// Renders the cell's headline counters.
    pub fn render(&self) -> String {
        let mut out = format!(
            "One cell: {} at {} scale (content prefetcher)\n\n",
            self.bench.name(),
            self.scale.name()
        );
        let rows: Vec<Vec<String>> = match &self.stats {
            Some(s) => vec![vec![
                s.retired.to_string(),
                s.cycles.to_string(),
                format!("{:.3}", s.ipc()),
                format!("{:.2}", s.mptu()),
            ]],
            None => vec![vec!["--".into(), "--".into(), "--".into(), "--".into()]],
        };
        out.push_str(&render_table(&["retired", "cycles", "IPC", "MPTU"], &rows));
        out.push_str(&failure_note(&self.failures));
        out
    }
}

/// Runs one `tpcc1` cell at `scale` with the tuned content prefetcher.
///
/// Tpcc1 is the representative pick: pointer-chasing TPC-C is the
/// workload family the paper's prefetcher targets, so the cell exercises
/// the VAM scan path, not just a stride stream.
pub fn run(scale: ExpScale, pool: &Pool) -> OneCell {
    let bench = Benchmark::Tpcc1;
    let ws = WorkloadSet::default();
    let grid = vec![(
        format!("onecell/{}", bench.name()),
        SystemConfig::with_content(),
        bench,
    )];
    let (mut cells, failures) = run_grid_cells(pool, &ws, scale.scale(), grid);
    OneCell {
        bench,
        scale,
        stats: cells.pop().flatten(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onecell_runs_and_renders_at_smoke() {
        let r = run(ExpScale::Smoke, &Pool::new(1));
        assert!(r.failures.is_empty());
        let s = r.stats.as_ref().expect("healthy run");
        assert!(s.retired > 0);
        let text = r.render();
        assert!(text.contains("tpcc-1"));
        assert!(text.contains(&s.retired.to_string()));
    }
}
