//! Figure 9: speedup versus prefetch depth, previous/next-line width, and
//! path reinforcement.
//!
//! The paper's key shape results, reproduced here:
//!
//! * without reinforcement ("nr"), *deeper* thresholds perform better
//!   (terminated chains need a demand miss to restart);
//! * with reinforcement ("reinf") the ordering flips — depth 3 wins;
//! * previous-line prefetching does not pay for its bandwidth;
//! * the best configuration is reinforcement + depth 3 + p0.n3.

use cdp_sim::runner::pointer_subset;
use cdp_sim::{speedup, Pool};
use cdp_types::{ContentConfig, SystemConfig};

use crate::common::{
    failure_note, mean_if_complete, opt_cell, render_table, run_grid_cells, CellFailure, ExpScale,
    WorkloadSet,
};

/// The width axis of Figure 9: (previous lines, next lines).
pub const WIDTH_AXIS: [(u32, u32); 7] = [(0, 0), (0, 1), (0, 2), (0, 3), (0, 4), (1, 0), (1, 1)];

/// The depth curves of Figure 9.
pub const DEPTHS: [u8; 3] = [9, 5, 3];

/// One curve: a (depth, reinforcement) pair across the width axis.
#[derive(Clone, Debug)]
pub struct Curve {
    /// Depth threshold.
    pub depth: u8,
    /// Whether path reinforcement was on.
    pub reinforcement: bool,
    /// Suite-average speedup per width point (same order as
    /// [`WIDTH_AXIS`]); `None` where a contributing cell failed.
    pub speedups: Vec<Option<f64>>,
}

impl Curve {
    /// Figure 9 legend label (e.g. `depth.3-reinf`).
    pub fn label(&self) -> String {
        format!(
            "depth.{}-{}",
            self.depth,
            if self.reinforcement { "reinf" } else { "nr" }
        )
    }
}

/// The full grid.
#[derive(Clone, Debug)]
pub struct Figure9 {
    /// Six curves (3 depths x {nr, reinf}).
    pub curves: Vec<Curve>,
    /// Cells that failed (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

impl Figure9 {
    /// The best (curve, width point) by speedup among the points that
    /// completed, or `None` if every point gapped out.
    pub fn best(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for (c, curve) in self.curves.iter().enumerate() {
            for (w, s) in curve.speedups.iter().enumerate() {
                if let Some(s) = *s {
                    if best.is_none_or(|b| s > b.2) {
                        best = Some((c, w, s));
                    }
                }
            }
        }
        best
    }

    /// Renders the grid with width points as rows and curves as columns.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Figure 9: speedup comparison — prefetch depth vs next-line count\n\n");
        let mut headers: Vec<String> = vec!["p.n".to_string()];
        headers.extend(self.curves.iter().map(|c| c.label()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = WIDTH_AXIS
            .iter()
            .enumerate()
            .map(|(w, (p, n))| {
                let mut row = vec![format!("p{p}.n{n}")];
                row.extend(
                    self.curves
                        .iter()
                        .map(|c| opt_cell(c.speedups[w], |s| format!("{s:.3}"))),
                );
                row
            })
            .collect();
        out.push_str(&render_table(&header_refs, &rows));
        if let Some((c, w, s)) = self.best() {
            out.push_str(&format!(
                "\nbest: {} at p{}.n{} -> {:.1}% speedup\n",
                self.curves[c].label(),
                WIDTH_AXIS[w].0,
                WIDTH_AXIS[w].1,
                (s - 1.0) * 100.0
            ));
        } else {
            out.push_str("\nbest: unavailable (every point failed)\n");
        }
        out.push_str(&failure_note(&self.failures));
        out
    }
}

/// Runs the Figure 9 grid over the pointer subset: 6 curves x 7 width
/// points x the benchmark subset, submitted as one flat pooled grid.
pub fn run(scale: ExpScale, pool: &Pool) -> Figure9 {
    let s = scale.scale();
    let benches = pointer_subset();
    let ws = WorkloadSet::default();
    let base_cfg = SystemConfig::asplos2002();
    let (baselines, mut failures) = run_grid_cells(
        pool,
        &ws,
        s,
        benches
            .iter()
            .map(|&b| (format!("base/{}", b.name()), base_cfg.clone(), b))
            .collect(),
    );
    // The curve axes, in render order.
    let mut axes = Vec::new();
    for &reinf in &[false, true] {
        for &depth in &DEPTHS {
            axes.push((depth, reinf));
        }
    }
    let mut grid = Vec::new();
    for &(depth, reinf) in &axes {
        for &(p, n) in &WIDTH_AXIS {
            let mut cfg = SystemConfig::asplos2002();
            cfg.prefetchers.content = Some(ContentConfig {
                depth_threshold: depth,
                reinforcement: reinf,
                prev_lines: p,
                next_lines: n,
                ..ContentConfig::tuned()
            });
            for &b in &benches {
                grid.push((
                    format!("d{depth}-r{reinf}-p{p}n{n}/{}", b.name()),
                    cfg.clone(),
                    b,
                ));
            }
        }
    }
    let (runs, grid_failures) = run_grid_cells(pool, &ws, s, grid);
    failures.extend(grid_failures);
    let mut chunks = runs.chunks(benches.len());
    let curves = axes
        .iter()
        .map(|&(depth, reinf)| {
            let speedups = WIDTH_AXIS
                .iter()
                .map(|_| {
                    let chunk = chunks.next().expect("one chunk per width point");
                    let sps: Vec<Option<f64>> = chunk
                        .iter()
                        .zip(&baselines)
                        .map(|(r, base)| match (r, base) {
                            (Some(r), Some(base)) => Some(speedup(base, r)),
                            _ => None,
                        })
                        .collect();
                    mean_if_complete(&sps)
                })
                .collect();
            Curve {
                depth,
                reinforcement: reinf,
                speedups,
            }
        })
        .collect();
    Figure9 { curves, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_matches_paper() {
        assert_eq!(WIDTH_AXIS.len(), 7);
        assert_eq!(DEPTHS, [9, 5, 3]);
    }

    #[test]
    fn curve_labels() {
        let c = Curve {
            depth: 3,
            reinforcement: true,
            speedups: vec![Some(1.0)],
        };
        assert_eq!(c.label(), "depth.3-reinf");
    }

    #[test]
    fn best_skips_gapped_points() {
        let f = Figure9 {
            curves: vec![Curve {
                depth: 3,
                reinforcement: false,
                speedups: vec![None, Some(1.2), Some(1.1)],
            }],
            failures: Vec::new(),
        };
        assert_eq!(f.best(), Some((0, 1, 1.2)));
    }
}
