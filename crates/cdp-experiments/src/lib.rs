//! Experiment harness: one entry point per table/figure of the paper's
//! evaluation.
//!
//! | Module | Paper artifact | What it reproduces |
//! |--------|----------------|--------------------|
//! | [`table1`] | Table 1 | the 4-GHz system configuration |
//! | [`fig1`] | Figure 1 | non-cumulative L2 MPTU warm-up trace (4 MB UL2) |
//! | [`table2`] | Table 2 | per-benchmark uops + L2 MPTU @ 1 MB / 4 MB |
//! | [`fig2`] | Figure 2 | VAM compare/filter/align bit positions |
//! | [`fig34`] | Figures 3–4 | chaining & reinforcement walk-through |
//! | [`fig7`] | Figure 7 | coverage/accuracy vs compare.filter bits |
//! | [`fig8`] | Figure 8 | coverage/accuracy vs align bits & scan step |
//! | [`fig9`] | Figure 9 | speedup vs prefetch depth × width × reinforcement |
//! | [`fig10`] | Figure 10 | UL2 load-request distribution + per-bench speedups |
//! | [`fig11`] | Figure 11 | Markov (1/8, 1/2, unbounded) vs content prefetcher |
//! | [`tlb`] | §4.2.2 | DTLB 64→1024 sweep (TLB-prefetching contribution) |
//! | [`pollution`] | §3.5 | bad-prefetch injection limit study |
//! | [`suite_summary`] | abstract / §4.2.1 | per-benchmark speedups, stateless vs reinforced |
//! | [`extensions`] | §4.1 / Fig 4(c) / ref \[11\] | adaptive knobs, rescan margins, stream buffers |
//! | [`sensitivity`] | §2.1 motivation | bus-latency and L2-size sweeps |
//! | [`tournament`] | §5 methodology | equal-silicon prefetcher zoo (Markov, delta, jump, CDP, perceptron hybrids) |
//!
//! Every experiment takes an [`ExpScale`] (how big a run) and returns a
//! typed result with a `render()` method producing the table/series the
//! paper reports.

#![warn(missing_docs)]

pub mod common;
pub mod context;
pub mod extensions;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig34;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod obs;
pub mod onecell;
pub mod pollution;
pub mod report;
pub mod sensitivity;
pub mod suite_summary;
pub mod table1;
pub mod table2;
pub mod tlb;
pub mod tournament;

pub use common::{CellFailure, ExpScale};
