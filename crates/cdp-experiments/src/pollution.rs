//! §3.5 limit study: the cost of cache pollution.
//!
//! "Bad prefetches were injected on every idle bus cycle to force
//! evictions, resulting in cache pollution. This study showed that a low
//! accuracy prefetcher can lead to an average 3% performance reduction."

use cdp_sim::hierarchy::PollutionConfig;
use cdp_sim::metrics::mean;
use cdp_sim::runner::with_warmup;
use cdp_sim::{speedup, Pool, SimJob};
use cdp_types::SystemConfig;
use cdp_workloads::suite::Benchmark;

use crate::common::{render_table, ExpScale, WorkloadSet};

/// One benchmark's pollution sensitivity.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Cycles with pollution / cycles without (values < 1 are slowdowns).
    pub speedup: f64,
    /// Junk lines injected.
    pub injected: u64,
}

/// The study result.
#[derive(Clone, Debug)]
pub struct Pollution {
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
    /// Average performance change (paper: ≈ −3%).
    pub average: f64,
}

impl Pollution {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Section 3.5 limit study: bad prefetches injected on idle bus cycles\n\n",
        );
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:+.1}%", (r.speedup - 1.0) * 100.0),
                    r.injected.to_string(),
                ]
            })
            .collect();
        out.push_str(&render_table(&["Benchmark", "perf change", "injected"], &rows));
        out.push_str(&format!(
            "\naverage performance change: {:+.1}% (paper: about -3%)\n",
            (self.average - 1.0) * 100.0
        ));
        out
    }
}

/// Runs the pollution study over the full suite (stride baseline with and
/// without injected junk fills).
pub fn run(scale: ExpScale, pool: &Pool) -> Pollution {
    run_on(scale, &Benchmark::all(), pool)
}

/// Runs the study on a subset: the clean and polluted runs of every
/// benchmark are independent pool jobs sharing one workload image.
pub fn run_on(scale: ExpScale, benches: &[Benchmark], pool: &Pool) -> Pollution {
    let s = scale.scale();
    let cfg = with_warmup(SystemConfig::asplos2002(), s);
    let ws = WorkloadSet::default();
    let mut jobs = Vec::new();
    for &b in benches {
        let w = ws.get(b, s);
        jobs.push(SimJob::new(format!("clean/{}", b.name()), cfg.clone(), w.clone()));
        let mut dirty = SimJob::new(format!("dirty/{}", b.name()), cfg.clone(), w);
        // One injection per line-occupancy of idle bus: "every idle
        // bus cycle" at line granularity.
        dirty.pollution = Some(PollutionConfig { period: 60 });
        jobs.push(dirty);
    }
    let results = pool.run_sims(jobs);
    let rows = benches
        .iter()
        .zip(results.chunks(2))
        .map(|(&b, pair)| Row {
            name: b.name().to_string(),
            speedup: speedup(&pair[0].stats, &pair[1].stats),
            injected: pair[1].stats.mem.injected_pollution,
        })
        .collect::<Vec<_>>();
    let average = mean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
    Pollution { rows, average }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pollution_never_helps() {
        let p = run_on(ExpScale::Smoke, &[Benchmark::B2e, Benchmark::Tpcc2], &Pool::new(2));
        assert_eq!(p.rows.len(), 2);
        for r in &p.rows {
            assert!(r.injected > 0, "{} injected nothing", r.name);
            assert!(
                r.speedup <= 1.02,
                "{}: pollution must not speed things up ({:.3})",
                r.name,
                r.speedup
            );
        }
        assert!(p.render().contains("limit study"));
    }
}
