//! The equal-silicon prefetcher tournament: every engine in the zoo,
//! normalized to matched table budgets, over the full benchmark suite.
//!
//! Mirrors the paper's §5 methodology (the Markov comparison holds total
//! silicon constant) but holds the *table* budget constant while the UL2
//! keeps its Table 1 geometry, so the axis under study is purely "what
//! does a byte of predictor state buy". Entrants:
//!
//! * `markov`  — the §5 STAB at the budget;
//! * `delta`   — the Pangloss-style delta-space Markov table;
//! * `jump`    — the pointer-chase/jump-pointer table;
//! * `cdp`     — the stateless content prefetcher (zero-budget
//!   reference row: its whole point is needing no table);
//! * `cdp+perceptron` / `stride+perceptron` — hybrids where the budget
//!   buys a perceptron confidence filter in front of a stateless (or
//!   baseline) engine instead of a correlation table.
//!
//! Every entrant keeps the Table 1 stride prefetcher (the paper's
//! baseline convention), so the stride table is common silicon and is
//! excluded from the budget. Configurations are normalized through each
//! engine's `budget_bytes()`; a requested budget no geometry can land
//! within ±5% of is refused before anything simulates.

use cdp_prefetch::{
    DeltaPrefetcher, JumpPrefetcher, MarkovPrefetcher, PerceptronFilter, Prefetcher,
};
use cdp_sim::{speedup, Engine, Pool, RunStats};
use cdp_types::{DeltaConfig, JumpConfig, MarkovConfig, PerceptronConfig, SystemConfig};
use cdp_workloads::suite::Benchmark;

use crate::common::{
    failure_note, mean_if_complete, opt_cell, render_table, run_grid_cells, CellFailure, ExpScale,
    WorkloadSet,
};

/// Byte budgets swept when the command line does not override them.
pub const DEFAULT_BUDGETS: [usize; 2] = [16 * 1024, 64 * 1024];

/// Normalization tolerance: an entrant's realized `budget_bytes()` must
/// land within this fraction of the requested budget.
pub const TOLERANCE: f64 = 0.05;

/// One tournament entrant: a label, the system it runs, and which engine
/// counters score it.
#[derive(Clone, Debug)]
pub struct Entrant {
    /// Row label (`markov`, `delta`, `jump`, `cdp`, hybrids).
    pub name: &'static str,
    /// The full system configuration (Table 1 core + this entrant).
    pub cfg: SystemConfig,
    /// Engine whose counters score this entrant.
    pub engine: Engine,
    /// Requested table budget; `None` for the stateless reference row.
    pub requested: Option<usize>,
    /// Realized `budget_bytes()` of the normalized configuration.
    pub actual: usize,
}

/// Total predictor-table storage a configuration's tournament-managed
/// engines occupy, via each engine's `budget_bytes()`. The always-on
/// stride table is common silicon across every entrant and is excluded;
/// the content prefetcher is stateless and reports 0 by construction.
#[must_use]
pub fn table_budget_bytes(cfg: &SystemConfig) -> usize {
    let p = &cfg.prefetchers;
    let mut total = 0;
    if let Some(c) = &p.markov {
        total += MarkovPrefetcher::new(c).budget_bytes();
    }
    if let Some(c) = &p.delta {
        total += DeltaPrefetcher::new(c).budget_bytes();
    }
    if let Some(c) = &p.jump {
        total += JumpPrefetcher::new(c).budget_bytes();
    }
    if let Some(c) = &p.perceptron {
        total += PerceptronFilter::new(c).budget_bytes();
    }
    total
}

/// Builds the entrant list for one budget, normalizing every stateful
/// configuration to it.
///
/// # Errors
///
/// Returns a description of the first entrant whose nearest realizable
/// geometry misses the requested budget by more than [`TOLERANCE`] —
/// the sweep refuses to present such a grid as "equal silicon".
pub fn entrants(budget: usize) -> Result<Vec<Entrant>, String> {
    let mut list: Vec<Entrant> = Vec::new();
    let mut push = |name: &'static str,
                    cfg: SystemConfig,
                    engine: Engine,
                    requested: Option<usize>|
     -> Result<(), String> {
        let actual = table_budget_bytes(&cfg);
        if let Some(req) = requested {
            let off = (actual as f64 - req as f64).abs() / req as f64;
            if off > TOLERANCE {
                return Err(format!(
                    "cannot normalize {name} to {req} bytes: nearest geometry holds {actual} \
                     bytes ({:.1}% off, tolerance {:.0}%)",
                    off * 100.0,
                    TOLERANCE * 100.0
                ));
            }
        }
        list.push(Entrant {
            name,
            cfg,
            engine,
            requested,
            actual,
        });
        Ok(())
    };
    let mut markov = SystemConfig::asplos2002();
    markov.prefetchers.markov = Some(MarkovConfig {
        stab_bytes: budget,
        associativity: 16,
        fanout: 4,
    });
    push("markov", markov, Engine::Markov, Some(budget))?;
    push(
        "delta",
        SystemConfig::with_delta(DeltaConfig::pangloss(budget)),
        Engine::Delta,
        Some(budget),
    )?;
    push(
        "jump",
        SystemConfig::with_jump(JumpConfig::sized(budget)),
        Engine::Jump,
        Some(budget),
    )?;
    push("cdp", SystemConfig::with_content(), Engine::Content, None)?;
    let perceptron = PerceptronConfig::with_budget(budget).ok_or_else(|| {
        format!(
            "cannot normalize a perceptron filter to {budget} bytes \
             (minimum {} bytes)",
            PerceptronConfig::MIN_BYTES
        )
    })?;
    push(
        "cdp+perceptron",
        SystemConfig::with_content().gated(perceptron),
        Engine::Content,
        Some(budget),
    )?;
    push(
        "stride+perceptron",
        SystemConfig::asplos2002().gated(perceptron),
        Engine::Stride,
        Some(budget),
    )?;
    Ok(list)
}

/// One scored entrant at one budget.
#[derive(Clone, Debug)]
pub struct EngineRow {
    /// Entrant label.
    pub name: &'static str,
    /// Requested budget (`None` for the stateless reference).
    pub requested: Option<usize>,
    /// Realized `budget_bytes()`.
    pub actual: usize,
    /// Suite-average speedup vs the Table 1 stride baseline; `None` when
    /// any contributing cell failed.
    pub speedup: Option<f64>,
    /// Suite coverage: the entrant engine's useful prefetches over the
    /// baseline's L2 demand misses (summed across benchmarks).
    pub coverage: Option<f64>,
    /// Suite accuracy: useful / issued (summed across benchmarks).
    pub accuracy: Option<f64>,
    /// Prefetches the entrant engine issued, suite total.
    pub issued: Option<u64>,
    /// Prefetched lines evicted untouched, suite total.
    pub wasted: Option<u64>,
    /// Per-benchmark speedups (suite order).
    pub per_bench: Vec<Option<f64>>,
    /// Per-benchmark wasted-eviction counts (the hybrid-gating check
    /// compares these between `cdp+perceptron` and `cdp`).
    pub wasted_per_bench: Vec<Option<u64>>,
}

/// The full tournament grid.
#[derive(Clone, Debug)]
pub struct Tournament {
    /// Benchmark names, in suite order.
    pub benches: Vec<&'static str>,
    /// Per-budget entrant rows, in [`entrants`] order.
    pub groups: Vec<(usize, Vec<EngineRow>)>,
    /// Cells that failed (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

fn fmt_budget(b: usize) -> String {
    if b.is_multiple_of(1024) {
        format!("{}KiB", b / 1024)
    } else {
        format!("{b}B")
    }
}

impl Tournament {
    /// Renders one table per budget plus the hybrid-gating check lines.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Tournament: equal-silicon prefetcher zoo (speedups vs Table 1 stride baseline)\n",
        );
        for (budget, rows) in &self.groups {
            out.push_str(&format!("\nbudget {}\n", fmt_budget(*budget)));
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.name.to_string(),
                        if r.requested.is_some() {
                            r.actual.to_string()
                        } else {
                            "0 (stateless)".to_string()
                        },
                        opt_cell(r.speedup, |s| format!("{s:.3}")),
                        opt_cell(r.speedup, |s| format!("{:+.1}%", (s - 1.0) * 100.0)),
                        opt_cell(r.coverage, |c| format!("{:.1}%", c * 100.0)),
                        opt_cell(r.accuracy, |a| format!("{:.1}%", a * 100.0)),
                        opt_cell(r.issued, |i| i.to_string()),
                        opt_cell(r.wasted, |w| w.to_string()),
                    ]
                })
                .collect();
            out.push_str(&render_table(
                &[
                    "engine", "bytes", "speedup", "gain", "coverage", "accuracy", "issued",
                    "wasted",
                ],
                &table,
            ));
            out.push_str(&self.gating_line(rows));
        }
        out.push_str(&failure_note(&self.failures));
        out
    }

    /// The hybrid-gating check: on how many benchmarks does the
    /// perceptron-gated content prefetcher waste fewer lines than the
    /// bare one?
    fn gating_line(&self, rows: &[EngineRow]) -> String {
        let find = |name: &str| rows.iter().find(|r| r.name == name);
        let (Some(bare), Some(gated)) = (find("cdp"), find("cdp+perceptron")) else {
            return String::new();
        };
        let mut lower = 0usize;
        let mut total = 0usize;
        for (b, g) in bare.wasted_per_bench.iter().zip(&gated.wasted_per_bench) {
            if let (Some(b), Some(g)) = (b, g) {
                total += 1;
                if g < b {
                    lower += 1;
                }
            }
        }
        format!("gating check: cdp+perceptron wasted < cdp on {lower}/{total} benchmarks\n")
    }
}

/// Runs the tournament over the full suite.
///
/// # Errors
///
/// Propagates [`entrants`]' refusal when a budget cannot be normalized.
pub fn run(scale: ExpScale, pool: &Pool, budgets: &[usize]) -> Result<Tournament, String> {
    run_on(scale, &Benchmark::all(), budgets, pool)
}

/// Runs the tournament on a benchmark subset (tests / quick looks):
/// stride baselines first, then every budget × entrant × benchmark cell
/// as one flat pooled grid.
///
/// # Errors
///
/// Returns the normalization refusal for the first bad budget — before
/// any cell simulates.
pub fn run_on(
    scale: ExpScale,
    benches: &[Benchmark],
    budgets: &[usize],
    pool: &Pool,
) -> Result<Tournament, String> {
    let groups_spec: Vec<(usize, Vec<Entrant>)> = budgets
        .iter()
        .map(|&b| entrants(b).map(|e| (b, e)))
        .collect::<Result<_, _>>()?;
    let s = scale.scale();
    let ws = WorkloadSet::default();
    let base_cfg = SystemConfig::asplos2002();
    let (baselines, mut failures) = run_grid_cells(
        pool,
        &ws,
        s,
        benches
            .iter()
            .map(|&b| (format!("base/{}", b.name()), base_cfg.clone(), b))
            .collect(),
    );
    let mut grid = Vec::new();
    for (budget, ents) in &groups_spec {
        for e in ents {
            for &b in benches {
                grid.push((
                    format!("{}/{}/{}", fmt_budget(*budget), e.name, b.name()),
                    e.cfg.clone(),
                    b,
                ));
            }
        }
    }
    let (cells, grid_failures) = run_grid_cells(pool, &ws, s, grid);
    failures.extend(grid_failures);
    let mut groups = Vec::new();
    let mut cursor = cells.chunks(benches.len());
    for (budget, ents) in groups_spec {
        let rows = ents
            .into_iter()
            .map(|e| {
                let chunk = cursor.next().expect("grid covers every entrant");
                score(e, chunk, &baselines)
            })
            .collect();
        groups.push((budget, rows));
    }
    Ok(Tournament {
        benches: benches.iter().map(|b| b.name()).collect(),
        groups,
        failures,
    })
}

/// Folds one entrant's benchmark cells (against the stride baselines)
/// into its scored row.
fn score(e: Entrant, chunk: &[Option<RunStats>], baselines: &[Option<RunStats>]) -> EngineRow {
    let mut per_bench = Vec::new();
    let mut wasted_per_bench = Vec::new();
    let mut issued = 0u64;
    let mut useful = 0u64;
    let mut wasted = 0u64;
    let mut base_misses = 0u64;
    let mut complete = true;
    for (r, base) in chunk.iter().zip(baselines) {
        match (r, base) {
            (Some(r), Some(base)) => {
                per_bench.push(Some(speedup(base, r)));
                let c = r
                    .mem
                    .engine(e.engine)
                    .expect("tournament entrants are prefetch engines");
                issued += c.issued;
                useful += c.useful();
                wasted += c.wasted_evictions;
                base_misses += base.mem.l2_demand_misses;
                wasted_per_bench.push(Some(c.wasted_evictions));
            }
            _ => {
                per_bench.push(None);
                wasted_per_bench.push(None);
                complete = false;
            }
        }
    }
    let ratio = |num: u64, den: u64| {
        if complete && den > 0 {
            Some(num as f64 / den as f64)
        } else {
            None
        }
    };
    EngineRow {
        name: e.name,
        requested: e.requested,
        actual: e.actual,
        speedup: mean_if_complete(&per_bench),
        coverage: ratio(useful, base_misses),
        accuracy: ratio(useful, issued),
        issued: complete.then_some(issued),
        wasted: complete.then_some(wasted),
        per_bench,
        wasted_per_bench,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entrant_lands_within_tolerance() {
        for budget in DEFAULT_BUDGETS {
            let ents = entrants(budget).expect("default budgets normalize");
            assert_eq!(ents.len(), 6);
            for e in &ents {
                match e.requested {
                    Some(req) => {
                        let off = (e.actual as f64 - req as f64).abs() / req as f64;
                        assert!(
                            off <= TOLERANCE,
                            "{} at {budget}: actual {} off by {:.2}%",
                            e.name,
                            e.actual,
                            off * 100.0
                        );
                    }
                    None => assert_eq!(e.actual, 0, "the reference row is stateless"),
                }
            }
        }
    }

    #[test]
    fn tiny_budget_is_refused() {
        let err = entrants(64).expect_err("64 bytes cannot hold a 16-way STAB");
        assert!(err.contains("cannot normalize"), "got: {err}");
    }

    #[test]
    fn smoke_grid_scores_all_engines() {
        let t = run_on(
            ExpScale::Smoke,
            &[Benchmark::Slsb, Benchmark::Tpcc2],
            &[16 * 1024],
            &Pool::new(2),
        )
        .expect("budget normalizes");
        assert!(t.failures.is_empty());
        assert_eq!(t.groups.len(), 1);
        let rows = &t.groups[0].1;
        assert_eq!(rows.len(), 6);
        for r in rows {
            assert!(r.speedup.is_some(), "{} has a speedup", r.name);
            assert!(r.issued.is_some(), "{} has issue counts", r.name);
            assert!(r.wasted.is_some(), "{} has wasted counts", r.name);
        }
        // The pointer-heavy suite must actually exercise the zoo: the
        // content engines issue, and the stateless reference row reports
        // zero table bytes.
        let cdp = rows.iter().find(|r| r.name == "cdp").unwrap();
        assert!(cdp.issued.unwrap() > 0, "cdp issues prefetches");
        assert_eq!(cdp.actual, 0);
        let rendered = t.render();
        assert!(rendered.contains("gating check"));
        assert!(rendered.contains("budget 16KiB"));
    }
}
