//! Figure 2: position of the virtual-address-matching compare, filter,
//! and align bits, plus a worked classification example.

use cdp_prefetch::is_candidate;
use cdp_types::{VamConfig, VirtAddr};

/// Renders the bit-field diagram for a VAM configuration and a small
/// classification demo against a sample trigger address.
pub fn run(cfg: VamConfig) -> String {
    let n = cfg.compare_bits as usize;
    let m = cfg.filter_bits as usize;
    let a = cfg.align_bits as usize;
    let mid = 32 - n - m - a;
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 2: VAM bit positions for configuration {}\n\n",
        cfg.label()
    ));
    out.push_str("  31                                    0\n");
    out.push_str(&format!(
        "  |{}|{}|{}|{}|\n",
        "C".repeat(n),
        "F".repeat(m),
        ".".repeat(mid),
        "A".repeat(a)
    ));
    out.push_str(&format!(
        "   C = {n} compare bits   F = {m} filter bits   A = {a} align bits   scan step = {} bytes\n\n",
        cfg.scan_step
    ));
    let trigger = VirtAddr(0x1040_2468);
    out.push_str(&format!("  trigger effective address: {trigger}\n"));
    for (word, why) in [
        (0x10ab_cde0u32, "compare bits match"),
        (0x20ab_cde0, "compare bits differ"),
        (0x1040_2469, "fails alignment"),
        (0x0000_0007, "small integer (zero region, filter rejects)"),
    ] {
        out.push_str(&format!(
            "  {:#010x} -> {}  ({why})\n",
            word,
            if is_candidate(word, trigger, &cfg) {
                "candidate"
            } else {
                "rejected "
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_tuned_layout() {
        let s = run(VamConfig::tuned());
        assert!(s.contains("8.4.1.2"));
        assert!(s.contains("CCCCCCCC"));
        assert!(s.contains("FFFF"));
        assert!(s.contains("candidate"));
        assert!(s.contains("rejected"));
    }
}
