//! Run-manifest assembly and artifact emission for `--emit-manifest`.
//!
//! The experiments binary collects three streams while it runs — per-cell
//! [`CellRecord`]s from the grids, per-id [`ExperimentRecord`]s from the
//! main loop, and per-run [`cdp_sim::Observation`]s from the obs sink —
//! and this module turns them into the on-disk artifacts:
//!
//! * `manifest.json` — one schema-versioned document per invocation
//!   (config fingerprints, per-cell status/attempts/wall-time, suite
//!   aggregates) validated by [`cdp_obs::validate`];
//! * `metrics.jsonl` — one line per metrics window per observed run;
//! * `trace.jsonl` — one line per captured trace event.
//!
//! All ordering is `(batch, index)` submission order, so artifacts are
//! byte-identical at any `--jobs` count.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};

use cdp_obs::{Json, SCHEMA_VERSION};
use cdp_sim::ObsEntry;

use crate::common::SEED;

/// One finished sweep cell, as the manifest reports it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellRecord {
    /// Owning experiment id (e.g. `tlb`).
    pub experiment: String,
    /// The cell's grid label.
    pub label: String,
    /// `ok`, `failed`, or `timeout`.
    pub status: &'static str,
    /// Attempts consumed.
    pub attempts: u32,
    /// Wall-clock milliseconds the cell's job consumed.
    pub wall_ms: u64,
    /// FNV-1a fingerprint of the cell's full `SystemConfig`.
    pub config_fingerprint: String,
    /// Checkpoint provenance: `off` (checkpointing disabled), `fresh`,
    /// `resumed`, or `corrupt-fallback` (see DESIGN.md §12).
    pub checkpoint: &'static str,
    /// Uops retired in the cell's measurement window (0 for failed
    /// cells). Deterministic — unlike `wall_ms` — so run-explain diffs
    /// it across runs.
    pub retired: u64,
    /// Prefetches issued across every engine in the cell (0 for failed
    /// cells). With `pf_useful`/`pf_wasted` this lets manifest consumers
    /// compute coverage and accuracy without re-running the cell.
    pub pf_issued: u64,
    /// Issued prefetches a demand later touched (fully or partially
    /// masked).
    pub pf_useful: u64,
    /// Prefetched lines evicted untouched (the wasted-prefetch counter
    /// the tournament's hybrid assertions read).
    pub pf_wasted: u64,
}

impl CellRecord {
    /// The cell's throughput in millions of uops per wall-clock second.
    /// Wall time lives only here, at the manifest layer — [`RunStats`]
    /// stays wall-free so simulation results remain bit-comparable.
    ///
    /// [`RunStats`]: cdp_sim::RunStats
    #[must_use]
    pub fn muops(&self) -> f64 {
        if self.retired == 0 || self.wall_ms == 0 {
            return 0.0;
        }
        self.retired as f64 / (self.wall_ms as f64 * 1000.0)
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("experiment", Json::Str(self.experiment.clone()));
        o.set("label", Json::Str(self.label.clone()));
        o.set("status", Json::Str(self.status.to_string()));
        o.set("attempts", Json::U64(u64::from(self.attempts)));
        o.set("wall_ms", Json::U64(self.wall_ms));
        o.set(
            "config_fingerprint",
            Json::Str(self.config_fingerprint.clone()),
        );
        o.set("checkpoint", Json::Str(self.checkpoint.to_string()));
        o.set("retired", Json::U64(self.retired));
        o.set("muops", Json::F64(self.muops()));
        o.set("pf_issued", Json::U64(self.pf_issued));
        o.set("pf_useful", Json::U64(self.pf_useful));
        o.set("pf_wasted", Json::U64(self.pf_wasted));
        o
    }
}

/// One experiment id's wall time, as the manifest reports it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExperimentRecord {
    /// Experiment id (e.g. `fig9`).
    pub id: String,
    /// Wall-clock milliseconds for the whole experiment.
    pub wall_ms: u64,
}

impl ExperimentRecord {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("id", Json::Str(self.id.clone()));
        o.set("wall_ms", Json::U64(self.wall_ms));
        o
    }
}

/// Everything the run accumulated for artifact emission.
#[derive(Debug, Default)]
pub struct ObsTaken {
    /// Per-cell records, in recording order (submission order per grid).
    pub cells: Vec<CellRecord>,
    /// Per-experiment wall times, in invocation order.
    pub experiments: Vec<ExperimentRecord>,
    /// Drained observations in `(batch, index)` order.
    pub entries: Vec<ObsEntry>,
    /// batch id → owning experiment id (parallel to batch allocation).
    pub batch_experiments: Vec<String>,
    /// Cells served from the fingerprint-keyed result cache.
    pub result_cache_hits: u64,
    /// Cells simulated because the result cache had no usable entry.
    pub result_cache_misses: u64,
    /// Entries replayed from the persistent result store (0 without
    /// `--result-store`).
    pub result_store_hits: u64,
    /// Store lookups that found no usable entry on disk.
    pub result_store_misses: u64,
    /// Damaged store entries moved aside and recomputed.
    pub result_store_quarantined: u64,
    /// Checkpoint writes that failed and were dropped (best-effort
    /// writes, but never silent).
    pub checkpoint_dropped_writes: u64,
}

impl ObsTaken {
    fn batch_experiment(&self, batch: u64) -> &str {
        self.batch_experiments
            .get(batch as usize)
            .map_or("", String::as_str)
    }

    /// Collected profiles keyed `(experiment, label)`, each key holding
    /// its entries in drain order. Cells re-run across grids share a
    /// label, so the manifest consumes each key as a FIFO queue: the
    /// n-th recorded cell under a key gets the n-th profile.
    fn profile_queues(&self) -> HashMap<(&str, &str), VecDeque<&cdp_obs::Profile>> {
        let mut queues: HashMap<(&str, &str), VecDeque<&cdp_obs::Profile>> = HashMap::new();
        for e in &self.entries {
            if let Some(p) = &e.observation.profile {
                queues
                    .entry((self.batch_experiment(e.batch), e.label.as_str()))
                    .or_default()
                    .push_back(p);
            }
        }
        queues
    }
}

/// Builds the `manifest.json` document.
#[must_use]
pub fn build_manifest(scale: &str, jobs: usize, taken: &ObsTaken) -> Json {
    let mut counts = (0u64, 0u64, 0u64); // ok, failed, timeout
    let mut wall_ms_total = 0u64;
    let mut retired_total = 0u64;
    for c in &taken.cells {
        match c.status {
            "ok" => counts.0 += 1,
            "failed" => counts.1 += 1,
            _ => counts.2 += 1,
        }
        wall_ms_total += c.wall_ms;
        retired_total += c.retired;
    }
    let windows_total: u64 = taken
        .entries
        .iter()
        .map(|e| e.observation.windows.len() as u64)
        .sum();
    let (mut events_total, mut recorded, mut overwritten, mut sampled_out) = (0u64, 0, 0, 0);
    for e in &taken.entries {
        events_total += e.observation.events.len() as u64;
        recorded += e.observation.trace_recorded;
        overwritten += e.observation.trace_overwritten;
        sampled_out += e.observation.trace_sampled_out;
    }
    let mut aggregates = Json::obj();
    aggregates.set("cells_total", Json::U64(taken.cells.len() as u64));
    aggregates.set("cells_ok", Json::U64(counts.0));
    aggregates.set("cells_failed", Json::U64(counts.1));
    aggregates.set("cells_timeout", Json::U64(counts.2));
    aggregates.set("cell_wall_ms_total", Json::U64(wall_ms_total));
    aggregates.set("uops_retired_total", Json::U64(retired_total));
    // Aggregate throughput: simulated uops per wall-clock second across
    // every cell, in millions. Summed cell wall time (not suite wall
    // time) so the figure is comparable at any --jobs count.
    aggregates.set(
        "muops",
        Json::F64(if retired_total == 0 || wall_ms_total == 0 {
            0.0
        } else {
            retired_total as f64 / (wall_ms_total as f64 * 1000.0)
        }),
    );
    aggregates.set("metrics_windows_total", Json::U64(windows_total));
    aggregates.set("trace_events_total", Json::U64(events_total));
    aggregates.set("trace_recorded_total", Json::U64(recorded));
    aggregates.set("trace_overwritten_total", Json::U64(overwritten));
    aggregates.set("trace_sampled_out_total", Json::U64(sampled_out));

    let suite_wall_ms: u64 = taken.experiments.iter().map(|e| e.wall_ms).sum();

    let mut doc = Json::obj();
    doc.set("schema_version", Json::U64(SCHEMA_VERSION));
    doc.set("tool", Json::Str("cdp-experiments".to_string()));
    doc.set("scale", Json::Str(scale.to_string()));
    doc.set("jobs", Json::U64(jobs as u64));
    doc.set("seed", Json::U64(SEED));
    doc.set("suite_wall_ms", Json::U64(suite_wall_ms));
    doc.set("result_cache_hits", Json::U64(taken.result_cache_hits));
    doc.set("result_cache_misses", Json::U64(taken.result_cache_misses));
    doc.set("result_store_hits", Json::U64(taken.result_store_hits));
    doc.set("result_store_misses", Json::U64(taken.result_store_misses));
    doc.set(
        "result_store_quarantined",
        Json::U64(taken.result_store_quarantined),
    );
    doc.set(
        "checkpoint_dropped_writes",
        Json::U64(taken.checkpoint_dropped_writes),
    );
    doc.set(
        "experiments",
        Json::Arr(taken.experiments.iter().map(ExperimentRecord::to_json).collect()),
    );
    let mut profiles = taken.profile_queues();
    doc.set(
        "cells",
        Json::Arr(
            taken
                .cells
                .iter()
                .map(|c| {
                    let mut o = c.to_json();
                    if let Some(p) = profiles
                        .get_mut(&(c.experiment.as_str(), c.label.as_str()))
                        .and_then(VecDeque::pop_front)
                    {
                        o.set("profile", p.to_json());
                    }
                    o
                })
                .collect(),
        ),
    );
    doc.set("aggregates", aggregates);
    doc
}

/// Renders `metrics.jsonl`: one line per window per observed run.
#[must_use]
pub fn render_metrics_jsonl(taken: &ObsTaken) -> String {
    let mut out = String::new();
    for e in &taken.entries {
        for w in &e.observation.windows {
            let mut line = Json::obj();
            line.set(
                "experiment",
                Json::Str(taken.batch_experiment(e.batch).to_string()),
            );
            line.set("label", Json::Str(e.label.clone()));
            let Json::Obj(fields) = w.to_json() else {
                unreachable!("MetricsWindow::to_json always yields an object");
            };
            for (k, v) in fields {
                line.set(&k, v);
            }
            out.push_str(&line.to_string());
            out.push('\n');
        }
    }
    out
}

/// Renders `trace.jsonl`: one line per captured event.
#[must_use]
pub fn render_trace_jsonl(taken: &ObsTaken) -> String {
    let mut out = String::new();
    for e in &taken.entries {
        for ev in &e.observation.events {
            let mut line = Json::obj();
            line.set(
                "experiment",
                Json::Str(taken.batch_experiment(e.batch).to_string()),
            );
            line.set("label", Json::Str(e.label.clone()));
            line.set("event", ev.to_json());
            out.push_str(&line.to_string());
            out.push('\n');
        }
    }
    out
}

/// Writes the artifact set into `dir`, returning the written paths.
///
/// `manifest.json` is always written; `metrics.jsonl` / `trace.jsonl`
/// only when the run actually captured windows / events.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifacts(
    dir: &Path,
    scale: &str,
    jobs: usize,
    taken: &ObsTaken,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let manifest = build_manifest(scale, jobs, taken);
    debug_assert!(
        cdp_obs::validate(&manifest).is_ok(),
        "emitted manifest must self-validate"
    );
    let mut paths = Vec::new();
    let mut write = |name: &str, text: String| -> std::io::Result<()> {
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path)?;
        f.write_all(text.as_bytes())?;
        paths.push(path);
        Ok(())
    };
    write("manifest.json", format!("{manifest}\n"))?;
    let metrics = render_metrics_jsonl(taken);
    if !metrics.is_empty() {
        write("metrics.jsonl", metrics)?;
    }
    let trace = render_trace_jsonl(taken);
    if !trace.is_empty() {
        write("trace.jsonl", trace)?;
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_sim::{MetricsWindow, Observation};

    fn sample_taken() -> ObsTaken {
        ObsTaken {
            cells: vec![
                CellRecord {
                    experiment: "tlb".into(),
                    label: "64/slsb".into(),
                    status: "ok",
                    attempts: 1,
                    wall_ms: 12,
                    config_fingerprint: "00baddecafc0ffee".into(),
                    checkpoint: "off",
                    retired: 24_000,
                    pf_issued: 120,
                    pf_useful: 90,
                    pf_wasted: 10,
                },
                CellRecord {
                    experiment: "tlb".into(),
                    label: "128/slsb".into(),
                    status: "timeout",
                    attempts: 1,
                    wall_ms: 900,
                    config_fingerprint: "00baddecafc0ffee".into(),
                    checkpoint: "resumed",
                    retired: 0,
                    pf_issued: 0,
                    pf_useful: 0,
                    pf_wasted: 0,
                },
            ],
            experiments: vec![ExperimentRecord {
                id: "tlb".into(),
                wall_ms: 950,
            }],
            entries: vec![ObsEntry {
                batch: 0,
                index: 0,
                label: "64/slsb".into(),
                observation: Observation {
                    windows: vec![MetricsWindow {
                        window: 0,
                        retired: 1000,
                        cycles: 2000,
                        ..MetricsWindow::default()
                    }],
                    ..Observation::default()
                },
            }],
            batch_experiments: vec!["tlb".into()],
            result_cache_hits: 3,
            result_cache_misses: 5,
            result_store_hits: 2,
            result_store_misses: 3,
            result_store_quarantined: 1,
            checkpoint_dropped_writes: 4,
        }
    }

    #[test]
    fn manifest_validates_and_aggregates() {
        let taken = sample_taken();
        let doc = build_manifest("smoke", 4, &taken);
        cdp_obs::validate(&doc).expect("schema-valid");
        let agg = doc.get("aggregates").unwrap();
        assert_eq!(agg.get("cells_total").unwrap().as_u64(), Some(2));
        assert_eq!(agg.get("cells_ok").unwrap().as_u64(), Some(1));
        assert_eq!(agg.get("cells_timeout").unwrap().as_u64(), Some(1));
        assert_eq!(agg.get("metrics_windows_total").unwrap().as_u64(), Some(1));
        assert_eq!(agg.get("uops_retired_total").unwrap().as_u64(), Some(24_000));
        // 24_000 uops over 912 ms of summed cell wall time.
        let muops = agg.get("muops").unwrap().as_f64().unwrap();
        assert!((muops - 24_000.0 / 912_000.0).abs() < 1e-12, "got {muops}");
        let cell = doc.get("cells").unwrap().as_arr().unwrap()[0].clone();
        assert_eq!(cell.get("retired").unwrap().as_u64(), Some(24_000));
        assert!(cell.get("muops").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(cell.get("pf_issued").unwrap().as_u64(), Some(120));
        assert_eq!(cell.get("pf_useful").unwrap().as_u64(), Some(90));
        assert_eq!(cell.get("pf_wasted").unwrap().as_u64(), Some(10));
        assert_eq!(doc.get("suite_wall_ms").unwrap().as_u64(), Some(950));
        assert_eq!(doc.get("result_cache_hits").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("result_cache_misses").unwrap().as_u64(), Some(5));
        assert_eq!(doc.get("result_store_hits").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("result_store_misses").unwrap().as_u64(), Some(3));
        assert_eq!(
            doc.get("result_store_quarantined").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            doc.get("checkpoint_dropped_writes").unwrap().as_u64(),
            Some(4)
        );
        // Round-trips through the parser.
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        cdp_obs::validate(&reparsed).expect("still valid after round-trip");
    }

    #[test]
    fn metrics_jsonl_lines_parse_and_carry_provenance() {
        let taken = sample_taken();
        let text = render_metrics_jsonl(&taken);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let j = Json::parse(lines[0]).unwrap();
        assert_eq!(j.get("experiment").unwrap().as_str(), Some("tlb"));
        assert_eq!(j.get("label").unwrap().as_str(), Some("64/slsb"));
        assert_eq!(j.get("retired").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn empty_streams_render_empty() {
        let taken = ObsTaken::default();
        assert!(render_metrics_jsonl(&taken).is_empty());
        assert!(render_trace_jsonl(&taken).is_empty());
        let doc = build_manifest("quick", 1, &taken);
        cdp_obs::validate(&doc).expect("empty run still schema-valid");
    }
}
