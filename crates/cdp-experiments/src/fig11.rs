//! Figure 11: Markov versus content prefetcher under equal silicon
//! budgets (§5, Table 3).
//!
//! Four configurations, all relative to the 1 MB-UL2 stride baseline:
//!
//! * `markov_1/8` — 896 KB 7-way UL2 + 128 KB STAB;
//! * `markov_1/2` — 512 KB 8-way UL2 + 512 KB STAB;
//! * `markov_big` — full 1 MB UL2 + unbounded STAB (upper bound);
//! * `content`    — full 1 MB UL2 + the tuned content prefetcher.
//!
//! Paper shape: the repartitioned Markov configurations lose (the STAB
//! cannot buy back the lost cache capacity), `markov_big` gains only
//! ~4.5% (training phase + resident lines), and the content prefetcher
//! beats it by ~3x.

use cdp_sim::{speedup, Pool};
use cdp_types::{MarkovConfig, SystemConfig};
use cdp_workloads::suite::Benchmark;

use crate::common::{
    ascii_bar, failure_note, mean_if_complete, opt_cell, render_table, run_grid_cells,
    CellFailure, ExpScale, GAP, WorkloadSet,
};

/// One configuration's result.
#[derive(Clone, Debug)]
pub struct Config {
    /// Configuration label (Figure 11 x-axis).
    pub name: String,
    /// Suite-average speedup over the stride baseline; `None` when any
    /// contributing cell failed.
    pub speedup: Option<f64>,
    /// Per-benchmark speedups (Table 2 order); `None` where a cell
    /// failed.
    pub per_bench: Vec<Option<f64>>,
}

/// The four-bar comparison.
#[derive(Clone, Debug)]
pub struct Figure11 {
    /// `markov_1/8`, `markov_1/2`, `markov_big`, `content`.
    pub configs: Vec<Config>,
    /// Cells that failed (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

impl Figure11 {
    /// Renders the bars.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 11: Markov vs content prefetcher average speedup (vs 1MB-UL2 stride baseline)\n\n",
        );
        let max = self
            .configs
            .iter()
            .filter_map(|c| c.speedup)
            .fold(1.0, f64::max);
        let rows: Vec<Vec<String>> = self
            .configs
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    opt_cell(c.speedup, |s| format!("{s:.3}")),
                    opt_cell(c.speedup, |s| format!("{:+.1}%", (s - 1.0) * 100.0)),
                    match c.speedup {
                        Some(s) => format!("|{}|", ascii_bar(s, max * 1.05, 30)),
                        None => GAP.to_string(),
                    },
                ]
            })
            .collect();
        out.push_str(&render_table(&["configuration", "speedup", "gain", ""], &rows));
        let find = |name: &str| {
            self.configs
                .iter()
                .find(|c| c.name == name)
                .and_then(|c| c.speedup)
        };
        if let (Some(big), Some(content)) = (find("markov_big"), find("content")) {
            let ratio = if big > 1.0 {
                (content - 1.0) / (big - 1.0)
            } else {
                f64::INFINITY
            };
            out.push_str(&format!(
                "\ncontent gain is {ratio:.1}x the unbounded Markov gain (paper: ~3x)\n"
            ));
        }
        out.push_str(&failure_note(&self.failures));
        out
    }
}

/// Runs the four configurations over the suite.
pub fn run(scale: ExpScale, pool: &Pool) -> Figure11 {
    run_on(scale, &Benchmark::all(), pool)
}

/// Runs the comparison on a benchmark subset (used by tests and the
/// quick-look example): baselines first, then all variant x benchmark
/// cells as one flat pooled grid.
pub fn run_on(scale: ExpScale, benches: &[Benchmark], pool: &Pool) -> Figure11 {
    let s = scale.scale();
    let base_cfg = SystemConfig::asplos2002();
    let variants: Vec<(String, SystemConfig)> = vec![
        (
            "markov_1/8".into(),
            SystemConfig::with_markov(MarkovConfig::eighth(), 896 * 1024, 7),
        ),
        (
            "markov_1/2".into(),
            SystemConfig::with_markov(MarkovConfig::half(), 512 * 1024, 8),
        ),
        (
            "markov_big".into(),
            SystemConfig::with_markov(MarkovConfig::unbounded(), 1024 * 1024, 8),
        ),
        ("content".into(), SystemConfig::with_content()),
    ];
    let ws = WorkloadSet::default();
    let (baselines, mut failures) = run_grid_cells(
        pool,
        &ws,
        s,
        benches
            .iter()
            .map(|&b| (format!("base/{}", b.name()), base_cfg.clone(), b))
            .collect(),
    );
    let mut grid = Vec::new();
    for (name, cfg) in &variants {
        for &b in benches {
            grid.push((format!("{name}/{}", b.name()), cfg.clone(), b));
        }
    }
    let (runs, grid_failures) = run_grid_cells(pool, &ws, s, grid);
    failures.extend(grid_failures);
    let configs = variants
        .into_iter()
        .zip(runs.chunks(benches.len()))
        .map(|((name, _), chunk)| {
            let per_bench: Vec<Option<f64>> = chunk
                .iter()
                .zip(&baselines)
                .map(|(r, base)| match (r, base) {
                    (Some(r), Some(base)) => Some(speedup(base, r)),
                    _ => None,
                })
                .collect();
            Config {
                name,
                speedup: mean_if_complete(&per_bench),
                per_bench,
            }
        })
        .collect();
    Figure11 { configs, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_beats_every_markov_configuration() {
        let f = run_on(
            ExpScale::Smoke,
            &[Benchmark::Slsb, Benchmark::Tpcc2, Benchmark::B2e],
            &Pool::new(2),
        );
        assert_eq!(f.configs.len(), 4);
        assert!(f.failures.is_empty());
        let content = f
            .configs
            .iter()
            .find(|c| c.name == "content")
            .and_then(|c| c.speedup)
            .expect("healthy run");
        for c in &f.configs {
            if c.name != "content" {
                let s = c.speedup.expect("healthy run");
                assert!(
                    content >= s - 0.02,
                    "content {:.3} must beat {} {:.3}",
                    content,
                    c.name,
                    s
                );
            }
        }
        assert!(f.render().contains("markov_big"));
    }
}
