//! Figure 7: adjusted prefetch coverage and accuracy versus the number of
//! compare and filter bits.
//!
//! The paper sweeps "N.M" combinations from 8.0 to 12.4 and picks 8
//! compare / 4 filter bits as the best coverage/accuracy trade-off:
//! accuracy rises with more compare bits (stricter matching) while
//! coverage falls (the prefetchable region halves per added bit).

use cdp_sim::runner::pointer_subset;
use cdp_sim::{accuracy, coverage, Engine, Pool, RunStats};
use cdp_types::{SystemConfig, VamConfig};
use cdp_workloads::suite::Benchmark;

use crate::common::{
    best_tradeoff, failure_note, mean_if_complete, opt_cell, render_table, run_grid_cells,
    CellFailure, ExpScale, WorkloadSet,
};

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Point {
    /// "N.M" label (e.g. `08.4`).
    pub label: String,
    /// VAM configuration measured.
    pub vam: VamConfig,
    /// Suite-average adjusted coverage; `None` when any contributing
    /// cell failed.
    pub coverage: Option<f64>,
    /// Suite-average adjusted accuracy; `None` when any contributing
    /// cell failed.
    pub accuracy: Option<f64>,
}

/// The full sweep.
#[derive(Clone, Debug)]
pub struct Figure7 {
    /// Sweep points in the paper's x-axis order.
    pub points: Vec<Point>,
    /// The point with the best coverage x accuracy product (the paper's
    /// "best trade-off" marker); `None` when no point completed.
    pub best: Option<usize>,
    /// Cells that failed (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

impl Figure7 {
    /// Renders the series.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Figure 7: adjusted coverage and accuracy vs compare.filter bits\n\n");
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                vec![
                    p.label.clone(),
                    opt_cell(p.coverage, |c| format!("{:.1}%", c * 100.0)),
                    opt_cell(p.accuracy, |a| format!("{:.1}%", a * 100.0)),
                    if Some(i) == self.best { "<= best trade-off".into() } else { String::new() },
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["N.M", "coverage", "accuracy", ""],
            &rows,
        ));
        out.push_str(&failure_note(&self.failures));
        out
    }
}

/// The paper's x-axis: (compare, filter) pairs.
pub fn paper_sweep() -> Vec<(u32, u32)> {
    vec![
        (8, 0),
        (8, 2),
        (8, 4),
        (8, 6),
        (8, 8),
        (9, 0),
        (9, 1),
        (9, 3),
        (9, 5),
        (9, 7),
        (10, 0),
        (10, 2),
        (10, 4),
        (10, 6),
        (11, 0),
        (11, 1),
        (11, 3),
        (11, 5),
        (12, 0),
        (12, 2),
        (12, 4),
    ]
}

/// The tuned content configuration with its VAM heuristic replaced.
pub fn vam_cfg(vam: VamConfig) -> SystemConfig {
    let mut cfg = SystemConfig::with_content();
    if let Some(c) = cfg.prefetchers.content.as_mut() {
        c.vam = vam;
    }
    cfg
}

/// Reduces one sweep point's per-benchmark cells (same order as
/// `baselines`) to suite-average (coverage, accuracy). Either average is
/// `None` as soon as one contributing cell — CDP run or its baseline —
/// is missing.
pub(crate) fn reduce_point(
    runs: &[Option<RunStats>],
    baselines: &[(Benchmark, Option<RunStats>)],
) -> (Option<f64>, Option<f64>) {
    let mut covs = Vec::new();
    let mut accs = Vec::new();
    for (r, (_, base)) in runs.iter().zip(baselines) {
        match (r, base) {
            (Some(r), Some(base)) => {
                covs.push(Some(coverage(r, base, Engine::Content)));
                // Warm-up boundary effects can push the raw ratio past 1;
                // clamp for presentation (the paper's counters share the
                // window).
                accs.push(Some(accuracy(r, Engine::Content).min(1.0)));
            }
            _ => {
                covs.push(None);
                accs.push(None);
            }
        }
    }
    (mean_if_complete(&covs), mean_if_complete(&accs))
}

/// Measures coverage/accuracy for one VAM configuration across the
/// pointer subset. `baselines` supplies the stride-only runs for the
/// coverage denominator. Also returns the cells that failed.
pub fn measure_vam(
    ws: &WorkloadSet,
    scale: ExpScale,
    pool: &Pool,
    vam: VamConfig,
    baselines: &[(Benchmark, Option<RunStats>)],
) -> ((Option<f64>, Option<f64>), Vec<CellFailure>) {
    let cfg = vam_cfg(vam);
    let grid = baselines
        .iter()
        .map(|(b, _)| (b.name().to_string(), cfg.clone(), *b))
        .collect();
    let (runs, failures) = run_grid_cells(pool, ws, scale.scale(), grid);
    (reduce_point(&runs, baselines), failures)
}

/// Runs stride-only baselines for the pointer subset (shared by the
/// Figure 7 and Figure 8 sweeps). A failed baseline gaps out every sweep
/// point of its benchmark.
pub fn baselines(
    ws: &WorkloadSet,
    scale: ExpScale,
    pool: &Pool,
) -> (Vec<(Benchmark, Option<RunStats>)>, Vec<CellFailure>) {
    let base_cfg = SystemConfig::asplos2002();
    let benches = pointer_subset();
    let grid = benches
        .iter()
        .map(|b| (format!("base/{}", b.name()), base_cfg.clone(), *b))
        .collect();
    let (runs, failures) = run_grid_cells(pool, ws, scale.scale(), grid);
    (benches.into_iter().zip(runs).collect(), failures)
}

/// Picks the best-trade-off index among the points that completed (the
/// original index space), or `None` if every point gapped out.
pub(crate) fn best_complete(points: &[(Option<f64>, Option<f64>)]) -> Option<usize> {
    let complete: Vec<(usize, (f64, f64))> = points
        .iter()
        .enumerate()
        .filter_map(|(i, p)| Some((i, (p.0?, p.1?))))
        .collect();
    if complete.is_empty() {
        return None;
    }
    let pairs: Vec<(f64, f64)> = complete.iter().map(|(_, p)| *p).collect();
    Some(complete[best_tradeoff(&pairs)].0)
}

/// Runs the Figure 7 sweep: every sweep point x benchmark is one
/// independent simulation, submitted to the pool as a single flat grid.
pub fn run(scale: ExpScale, pool: &Pool) -> Figure7 {
    let ws = WorkloadSet::default();
    let (base, mut failures) = baselines(&ws, scale, pool);
    let sweep = paper_sweep();
    let vams: Vec<VamConfig> = sweep
        .iter()
        .map(|&(n, m)| VamConfig {
            compare_bits: n,
            filter_bits: m,
            ..VamConfig::tuned()
        })
        .collect();
    let mut grid = Vec::new();
    for (&(n, m), vam) in sweep.iter().zip(&vams) {
        for (b, _) in &base {
            grid.push((format!("{n:02}.{m}/{}", b.name()), vam_cfg(*vam), *b));
        }
    }
    let (runs, sweep_failures) = run_grid_cells(pool, &ws, scale.scale(), grid);
    failures.extend(sweep_failures);
    let mut points = Vec::new();
    for (i, (&(n, m), vam)) in sweep.iter().zip(&vams).enumerate() {
        let chunk = &runs[i * base.len()..(i + 1) * base.len()];
        let (cov, acc) = reduce_point(chunk, &base);
        points.push(Point {
            label: format!("{n:02}.{m}"),
            vam: *vam,
            coverage: cov,
            accuracy: acc,
        });
    }
    let best = best_complete(
        &points
            .iter()
            .map(|p| (p.coverage, p.accuracy))
            .collect::<Vec<_>>(),
    );
    Figure7 { points, best, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_axis_matches_paper() {
        let s = paper_sweep();
        assert_eq!(s.len(), 21);
        assert_eq!(s[0], (8, 0));
        assert_eq!(s[20], (12, 4));
    }

    #[test]
    fn best_complete_skips_gapped_points() {
        // The winner keeps its index in the *original* point list even
        // when earlier points gapped out.
        let pts = [
            (None, None),
            (Some(0.30), Some(0.50)),
            (Some(0.30), Some(0.90)),
        ];
        assert_eq!(best_complete(&pts), Some(2));
        assert_eq!(best_complete(&[(None, None)]), None);
    }

    #[test]
    fn more_compare_bits_do_not_raise_coverage() {
        // Scaled-down directional check: coverage at 12 compare bits must
        // not exceed coverage at 8 compare bits (same filter).
        let pool = Pool::new(2);
        let ws = WorkloadSet::default();
        let (base, base_failures) = baselines(&ws, ExpScale::Smoke, &pool);
        assert!(base_failures.is_empty());
        let at = |n: u32| {
            let ((cov, _), failures) = measure_vam(
                &ws,
                ExpScale::Smoke,
                &pool,
                VamConfig {
                    compare_bits: n,
                    filter_bits: 4,
                    ..VamConfig::tuned()
                },
                &base,
            );
            assert!(failures.is_empty());
            cov.expect("healthy run")
        };
        let cov8 = at(8);
        let cov12 = at(12);
        assert!(
            cov12 <= cov8 + 0.02,
            "narrowing the region cannot add coverage: {cov8} -> {cov12}"
        );
    }
}
