//! Figure 7: adjusted prefetch coverage and accuracy versus the number of
//! compare and filter bits.
//!
//! The paper sweeps "N.M" combinations from 8.0 to 12.4 and picks 8
//! compare / 4 filter bits as the best coverage/accuracy trade-off:
//! accuracy rises with more compare bits (stricter matching) while
//! coverage falls (the prefetchable region halves per added bit).

use cdp_sim::metrics::mean;
use cdp_sim::runner::pointer_subset;
use cdp_sim::{accuracy, coverage, Engine};
use cdp_types::{SystemConfig, VamConfig};

use crate::common::{best_tradeoff, render_table, run_cfg, ExpScale, WorkloadSet};

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Point {
    /// "N.M" label (e.g. `08.4`).
    pub label: String,
    /// VAM configuration measured.
    pub vam: VamConfig,
    /// Suite-average adjusted coverage.
    pub coverage: f64,
    /// Suite-average adjusted accuracy.
    pub accuracy: f64,
}

/// The full sweep.
#[derive(Clone, Debug)]
pub struct Figure7 {
    /// Sweep points in the paper's x-axis order.
    pub points: Vec<Point>,
    /// The point with the best coverage x accuracy product (the paper's
    /// "best trade-off" marker).
    pub best: usize,
}

impl Figure7 {
    /// Renders the series.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Figure 7: adjusted coverage and accuracy vs compare.filter bits\n\n");
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                vec![
                    p.label.clone(),
                    format!("{:.1}%", p.coverage * 100.0),
                    format!("{:.1}%", p.accuracy * 100.0),
                    if i == self.best { "<= best trade-off".into() } else { String::new() },
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["N.M", "coverage", "accuracy", ""],
            &rows,
        ));
        out
    }
}

/// The paper's x-axis: (compare, filter) pairs.
pub fn paper_sweep() -> Vec<(u32, u32)> {
    vec![
        (8, 0),
        (8, 2),
        (8, 4),
        (8, 6),
        (8, 8),
        (9, 0),
        (9, 1),
        (9, 3),
        (9, 5),
        (9, 7),
        (10, 0),
        (10, 2),
        (10, 4),
        (10, 6),
        (11, 0),
        (11, 1),
        (11, 3),
        (11, 5),
        (12, 0),
        (12, 2),
        (12, 4),
    ]
}

/// Measures coverage/accuracy for one VAM configuration across the
/// pointer subset. `baselines` supplies the stride-only runs for the
/// coverage denominator.
pub fn measure_vam(
    ws: &mut WorkloadSet,
    scale: ExpScale,
    vam: VamConfig,
    baselines: &[(cdp_workloads::suite::Benchmark, cdp_sim::RunStats)],
) -> (f64, f64) {
    let mut cfg = SystemConfig::with_content();
    if let Some(c) = cfg.prefetchers.content.as_mut() {
        c.vam = vam;
    }
    let mut covs = Vec::new();
    let mut accs = Vec::new();
    for (b, base) in baselines {
        let r = run_cfg(ws, &cfg, *b, scale.scale());
        covs.push(coverage(&r, base, Engine::Content));
        // Warm-up boundary effects can push the raw ratio past 1; clamp
        // for presentation (the paper's counters share the window).
        accs.push(accuracy(&r, Engine::Content).min(1.0));
    }
    (mean(&covs), mean(&accs))
}

/// Runs stride-only baselines for the pointer subset (shared by the
/// Figure 7 and Figure 8 sweeps).
pub fn baselines(
    ws: &mut WorkloadSet,
    scale: ExpScale,
) -> Vec<(cdp_workloads::suite::Benchmark, cdp_sim::RunStats)> {
    let base_cfg = SystemConfig::asplos2002();
    pointer_subset()
        .into_iter()
        .map(|b| {
            let r = run_cfg(ws, &base_cfg, b, scale.scale());
            (b, r)
        })
        .collect()
}

/// Runs the Figure 7 sweep.
pub fn run(scale: ExpScale) -> Figure7 {
    let mut ws = WorkloadSet::default();
    let base = baselines(&mut ws, scale);
    let mut points = Vec::new();
    for (n, m) in paper_sweep() {
        let vam = VamConfig {
            compare_bits: n,
            filter_bits: m,
            ..VamConfig::tuned()
        };
        let (cov, acc) = measure_vam(&mut ws, scale, vam, &base);
        points.push(Point {
            label: format!("{n:02}.{m}"),
            vam,
            coverage: cov,
            accuracy: acc,
        });
    }
    let best = best_tradeoff(&points.iter().map(|p| (p.coverage, p.accuracy)).collect::<Vec<_>>());
    Figure7 { points, best }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_axis_matches_paper() {
        let s = paper_sweep();
        assert_eq!(s.len(), 21);
        assert_eq!(s[0], (8, 0));
        assert_eq!(s[20], (12, 4));
    }

    #[test]
    fn more_compare_bits_do_not_raise_coverage() {
        // Scaled-down directional check: coverage at 12 compare bits must
        // not exceed coverage at 8 compare bits (same filter).
        let mut ws = WorkloadSet::default();
        let base = baselines(&mut ws, ExpScale::Smoke);
        let mut at = |n: u32| {
            measure_vam(
                &mut ws,
                ExpScale::Smoke,
                VamConfig {
                    compare_bits: n,
                    filter_bits: 4,
                    ..VamConfig::tuned()
                },
                &base,
            )
        };
        let (cov8, _) = at(8);
        let (cov12, _) = at(12);
        assert!(
            cov12 <= cov8 + 0.02,
            "narrowing the region cannot add coverage: {cov8} -> {cov12}"
        );
    }
}
