//! Table 2: per-benchmark trace statistics — uops executed and L2 MPTU
//! for 1 MB and 4 MB second-level caches.

use cdp_sim::Pool;
use cdp_types::SystemConfig;
use cdp_workloads::suite::Benchmark;

use crate::common::{
    failure_note, opt_cell, render_table, run_grid_cells, CellFailure, ExpScale, WorkloadSet,
};

/// One Table 2 row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Suite category.
    pub suite: String,
    /// Uops executed (measurement window); `None` if the 1 MB cell failed.
    pub uops: Option<u64>,
    /// L2 MPTU with the 1 MB UL2; `None` if the cell failed.
    pub mptu_1mb: Option<f64>,
    /// L2 MPTU with the 4 MB UL2; `None` if the cell failed.
    pub mptu_4mb: Option<f64>,
}

/// The full table.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// One row per benchmark, Table 2 order.
    pub rows: Vec<Row>,
    /// Cells that failed (empty on a healthy run).
    pub failures: Vec<CellFailure>,
}

impl Table2 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table 2: uops executed and L2 MPTU statistics for the benchmark sets\n\n",
        );
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.suite.clone(),
                    opt_cell(r.uops, |u| u.to_string()),
                    opt_cell(r.mptu_1mb, |m| format!("{m:.2}")),
                    opt_cell(r.mptu_4mb, |m| format!("{m:.2}")),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["Benchmark", "Suite", "uops", "MPTU (1MB)", "MPTU (4MB)"],
            &rows,
        ));
        out.push_str(&failure_note(&self.failures));
        out
    }
}

/// Runs every benchmark under the stride baseline at both UL2 sizes,
/// all runs as independent pool jobs.
pub fn run(scale: ExpScale, pool: &Pool) -> Table2 {
    let s = scale.scale();
    let cfg_1mb = SystemConfig::asplos2002();
    let mut cfg_4mb = SystemConfig::asplos2002();
    cfg_4mb.ul2.size_bytes = 4 * 1024 * 1024;
    let ws = WorkloadSet::default();
    let mut grid = Vec::new();
    for b in Benchmark::all() {
        grid.push((format!("1mb/{}", b.name()), cfg_1mb.clone(), b));
        grid.push((format!("4mb/{}", b.name()), cfg_4mb.clone(), b));
    }
    let (runs, failures) = run_grid_cells(pool, &ws, s, grid);
    let rows = Benchmark::all()
        .into_iter()
        .zip(runs.chunks(2))
        .map(|(b, pair)| Row {
            name: b.name().to_string(),
            suite: b.suite().to_string(),
            uops: pair[0].as_ref().map(|r| r.retired),
            mptu_1mb: pair[0].as_ref().map(cdp_sim::RunStats::mptu),
            mptu_4mb: pair[1].as_ref().map(cdp_sim::RunStats::mptu),
        })
        .collect();
    Table2 { rows, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_cache_never_increases_mptu_much() {
        let t = run(ExpScale::Smoke, &Pool::new(2));
        assert_eq!(t.rows.len(), 15);
        assert!(t.failures.is_empty(), "fault-free run has no gaps");
        for r in &t.rows {
            let (m1, m4) = (r.mptu_1mb.expect("healthy"), r.mptu_4mb.expect("healthy"));
            assert!(
                m4 <= m1 * 1.25 + 0.5,
                "{}: 4MB {} vs 1MB {}",
                r.name,
                m4,
                m1
            );
        }
        let s = t.render();
        assert!(s.contains("verilog-gate"));
        assert!(!s.contains("cell(s) failed"), "no footnote without gaps");
    }
}
