//! End-to-end contract of the observability CLI surface: with every
//! capture flag off, stdout is byte-identical to an unobserved run; with
//! `--emit-manifest`, the artifacts exist, parse, and validate.

use std::path::PathBuf;
use std::process::Command;

use cdp_obs::{validate, Json};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cdp-obs-cli-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn manifest_run_keeps_stdout_identical_and_emits_valid_artifacts() {
    let plain = bin()
        .args(["tlb", "--smoke", "--jobs", "2"])
        .output()
        .expect("run experiments");
    assert!(plain.status.success(), "plain run failed: {plain:?}");
    assert!(
        plain.stderr.is_empty(),
        "per-id timing must be opt-in (--verbose-timing), got: {}",
        String::from_utf8_lossy(&plain.stderr)
    );

    let dir = temp_dir("manifest");
    let observed = bin()
        .args([
            "tlb",
            "--smoke",
            "--jobs",
            "1",
            "--trace",
            "--metrics-window",
            "16384",
            "--emit-manifest",
        ])
        .arg(&dir)
        .arg("--verbose-timing")
        .output()
        .expect("run experiments with observability");
    assert!(observed.status.success(), "observed run failed: {observed:?}");
    assert_eq!(
        plain.stdout, observed.stdout,
        "stdout must be byte-identical with observability on, at a different --jobs count"
    );
    let stderr = String::from_utf8_lossy(&observed.stderr);
    assert!(
        stderr.contains("tlb: ") && stderr.contains("(1 jobs)"),
        "--verbose-timing restores the timing line: {stderr}"
    );
    assert!(stderr.contains("manifest.json"), "manifest path on stderr");

    let manifest_text =
        std::fs::read_to_string(dir.join("manifest.json")).expect("manifest.json written");
    let manifest = Json::parse(&manifest_text).expect("manifest parses");
    validate(&manifest).expect("manifest schema-valid");
    let experiments = manifest.get("experiments").unwrap().as_arr().unwrap();
    assert!(experiments
        .iter()
        .any(|e| e.get("id").and_then(Json::as_str) == Some("tlb")));
    let cells = manifest.get("cells").unwrap().as_arr().unwrap();
    assert!(!cells.is_empty(), "tlb grid produced cells");
    assert!(cells
        .iter()
        .all(|c| c.get("status").and_then(Json::as_str) == Some("ok")));

    let metrics =
        std::fs::read_to_string(dir.join("metrics.jsonl")).expect("metrics.jsonl written");
    let mut lines = 0usize;
    for line in metrics.lines() {
        let j = Json::parse(line).expect("every JSONL line parses");
        assert!(j.get("label").is_some() && j.get("retired").is_some());
        lines += 1;
    }
    assert!(lines > 0, "metrics series is non-empty");
    assert!(
        dir.join("trace.jsonl").exists(),
        "--trace produces the event stream"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn capture_flags_without_emit_manifest_are_a_usage_error() {
    for args in [
        vec!["tlb", "--smoke", "--trace"],
        vec!["tlb", "--smoke", "--metrics-window", "4096"],
        vec!["tlb", "--smoke", "--trace-filter", "vam"],
    ] {
        let out = bin().args(&args).output().expect("run experiments");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2 (usage error)"
        );
        assert!(String::from_utf8_lossy(&out.stderr).contains("--emit-manifest"));
    }
}

#[test]
fn bad_trace_filter_is_rejected() {
    let out = bin()
        .args([
            "tlb",
            "--smoke",
            "--trace-filter",
            "bogus",
            "--emit-manifest",
            "/tmp/never-written",
        ])
        .output()
        .expect("run experiments");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown trace category"));
}
