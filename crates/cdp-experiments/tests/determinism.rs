//! The parallel engine contract: rendered experiment output is
//! byte-identical at any job count, because the pool returns results in
//! submission order no matter which worker finished first.

use cdp_experiments::{fig11, fig9, tlb, tournament, ExpScale};
use cdp_sim::Pool;
use cdp_workloads::suite::Benchmark;

#[test]
fn fig9_render_is_identical_serial_and_parallel() {
    let serial = fig9::run(ExpScale::Smoke, &Pool::new(1)).render();
    let parallel = fig9::run(ExpScale::Smoke, &Pool::new(4)).render();
    assert_eq!(serial, parallel);
}

#[test]
fn tlb_render_is_identical_serial_and_parallel() {
    let serial = tlb::run(ExpScale::Smoke, &Pool::new(1)).render();
    let parallel = tlb::run(ExpScale::Smoke, &Pool::new(4)).render();
    assert_eq!(serial, parallel);
}

#[test]
fn tournament_subset_render_is_identical_serial_and_parallel() {
    let benches = [Benchmark::Slsb, Benchmark::Tpcc2];
    let budgets = [16 * 1024];
    let serial = tournament::run_on(ExpScale::Smoke, &benches, &budgets, &Pool::new(1))
        .expect("budget normalizes")
        .render();
    let parallel = tournament::run_on(ExpScale::Smoke, &benches, &budgets, &Pool::new(4))
        .expect("budget normalizes")
        .render();
    assert_eq!(serial, parallel);
}

#[test]
fn fig11_subset_render_is_identical_serial_and_parallel() {
    let benches = [Benchmark::Slsb, Benchmark::Tpcc2];
    let serial = fig11::run_on(ExpScale::Smoke, &benches, &Pool::new(1)).render();
    let parallel = fig11::run_on(ExpScale::Smoke, &benches, &Pool::new(4)).render();
    assert_eq!(serial, parallel);
}
