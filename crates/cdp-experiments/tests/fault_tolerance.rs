//! End-to-end fault-tolerance contract of the `experiments` binary:
//!
//! * strict mode (default) aborts on an injected fault;
//! * `--keep-going` completes the run, renders failing cells as `--`
//!   gaps, prints a failure report on stderr, and exits with the
//!   documented partial-failure code 3;
//! * stdout is byte-identical at any `--jobs` count, faulted or not;
//! * cells untouched by the fault report the same values as a fault-free
//!   run.

use std::process::{Command, Output};

const EXIT_PARTIAL: i32 = 3;

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("spawn experiments binary")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// The whitespace-split tokens of every stdout row naming `bench`.
fn bench_rows(out: &str, bench: &str) -> Vec<Vec<String>> {
    out.lines()
        .filter(|l| l.split_whitespace().next() == Some(bench))
        .map(|l| l.split_whitespace().map(str::to_string).collect())
        .collect()
}

#[test]
fn bad_fault_spec_is_a_usage_error() {
    let o = experiments(&["table2", "--smoke", "--fault", "bogus:spec"]);
    assert_eq!(o.status.code(), Some(2), "stderr: {}", stderr(&o));
    assert!(stderr(&o).contains("bad --fault spec"));
}

#[test]
fn strict_mode_aborts_on_an_injected_fault() {
    // Unmapping trace pages of slsb makes its demand path fail; without
    // --keep-going the first failing cell is fatal.
    let o = experiments(&[
        "table2", "--smoke", "--jobs", "2", "--fault", "unmap:slsb:7:2",
    ]);
    assert!(!o.status.success());
    assert_ne!(o.status.code(), Some(EXIT_PARTIAL), "strict mode is not partial");
    assert!(
        stderr(&o).contains("unmapped"),
        "the typed error reaches stderr: {}",
        stderr(&o)
    );
}

#[test]
fn keep_going_renders_gaps_reports_failures_and_exits_partial() {
    let clean = experiments(&["table2", "--smoke", "--jobs", "2"]);
    assert!(clean.status.success(), "stderr: {}", stderr(&clean));
    let clean_out = stdout(&clean);
    assert!(!clean_out.contains("cell(s) failed"), "no footnote when healthy");

    let faulted = experiments(&[
        "table2", "--smoke", "--jobs", "2", "--keep-going", "--fault", "unmap:slsb:7:2",
    ]);
    assert_eq!(
        faulted.status.code(),
        Some(EXIT_PARTIAL),
        "stderr: {}",
        stderr(&faulted)
    );
    let out = stdout(&faulted);
    let err = stderr(&faulted);

    // The faulted benchmark's row is an annotated gap...
    let slsb = bench_rows(&out, "slsb");
    assert_eq!(slsb.len(), 1, "slsb row present:\n{out}");
    assert!(
        slsb[0].iter().filter(|c| *c == "--").count() >= 3,
        "slsb cells gap out: {:?}",
        slsb[0]
    );
    assert!(out.contains("cell(s) failed"), "footnote below the table:\n{out}");

    // ...the failure report names the cell and the typed error...
    assert!(err.contains("FAILURE REPORT"), "stderr: {err}");
    assert!(err.contains("[table2]"), "experiment id in report: {err}");
    assert!(err.contains("slsb"), "cell label in report: {err}");
    assert!(err.contains("unmapped"), "typed error in report: {err}");

    // ...and every unaffected benchmark reports exactly the fault-free
    // values (token-wise, so column re-widening cannot mask a change).
    for bench in ["quake", "b2e", "tpcc-2", "verilog-gate"] {
        let clean_rows = bench_rows(&clean_out, bench);
        let fault_rows = bench_rows(&out, bench);
        assert!(!clean_rows.is_empty(), "{bench} present in clean run");
        assert_eq!(
            clean_rows, fault_rows,
            "{bench} cells must be untouched by the slsb fault"
        );
    }
}

#[test]
fn faulted_stdout_is_byte_identical_at_any_job_count() {
    let args = |jobs: &'static str| {
        [
            "table2", "--smoke", "--jobs", jobs, "--keep-going", "--fault", "unmap:slsb:7:2",
        ]
    };
    let one = experiments(&args("1"));
    let four = experiments(&args("4"));
    assert_eq!(one.status.code(), Some(EXIT_PARTIAL));
    assert_eq!(four.status.code(), Some(EXIT_PARTIAL));
    assert_eq!(
        stdout(&one),
        stdout(&four),
        "submission-order results make gaps deterministic"
    );
}
