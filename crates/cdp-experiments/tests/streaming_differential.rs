//! Differential contract of the streaming engine at the experiment
//! surface:
//!
//! * `--stream` (force the streaming engine everywhere) keeps sweep
//!   stdout byte-identical to the materialized engine, at any `--jobs`;
//! * the manifest carries per-uop throughput accounting (`retired`,
//!   `muops`) for every tier;
//! * the result cache never replays a cell across scale tiers — tier
//!   parameters are part of the cell key.

use std::path::PathBuf;
use std::process::Command;

use cdp_experiments::{context, onecell, ExpScale};
use cdp_obs::{validate, Json};
use cdp_sim::Pool;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdp-stream-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn stream_flag_keeps_sweep_stdout_byte_identical_at_any_jobs() {
    let plain = bin()
        .args(["tlb", "--smoke", "--jobs", "2"])
        .output()
        .expect("run experiments");
    assert!(plain.status.success(), "materialized run failed: {plain:?}");
    for jobs in ["1", "4"] {
        let streamed = bin()
            .args(["tlb", "--smoke", "--stream", "--jobs", jobs])
            .output()
            .expect("run experiments with --stream");
        assert!(
            streamed.status.success(),
            "streamed run failed at --jobs {jobs}: {streamed:?}"
        );
        assert_eq!(
            plain.stdout, streamed.stdout,
            "--stream must not perturb stdout at --jobs {jobs}"
        );
    }
}

#[test]
fn onecell_manifest_reports_throughput_accounting() {
    let dir = temp_dir("manifest");
    let out = bin()
        .args(["onecell", "--smoke", "--jobs", "1", "--emit-manifest"])
        .arg(&dir)
        .output()
        .expect("run onecell with a manifest");
    assert!(out.status.success(), "onecell run failed: {out:?}");

    let text = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest written");
    let manifest = Json::parse(&text).expect("manifest parses");
    validate(&manifest).expect("manifest schema-valid");
    let cells = manifest.get("cells").unwrap().as_arr().unwrap();
    assert!(!cells.is_empty(), "onecell produced a cell record");
    for c in cells {
        let retired = c.get("retired").and_then(Json::as_f64).expect("retired key");
        assert!(retired > 0.0, "a healthy cell retires uops");
        assert!(c.get("muops").and_then(Json::as_f64).is_some(), "muops key");
    }
    let agg = manifest.get("aggregates").expect("aggregates object");
    assert!(
        agg.get("uops_retired_total")
            .and_then(Json::as_f64)
            .is_some_and(|v| v > 0.0),
        "aggregate uop count"
    );
    assert!(agg.get("muops").and_then(Json::as_f64).is_some(), "aggregate muops");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn result_cache_never_replays_across_scale_tiers() {
    context::set_result_cache(true);
    let pool = Pool::new(1);

    let smoke1 = onecell::run(ExpScale::Smoke, &pool);
    let (h0, m0) = context::result_cache_stats();
    assert_eq!((h0, m0), (0, 1), "first smoke cell is a miss");

    // Same tier, same config: a replay.
    let smoke2 = onecell::run(ExpScale::Smoke, &pool);
    let (h1, m1) = context::result_cache_stats();
    assert_eq!((h1, m1), (1, 1), "identical smoke cell replays");
    assert_eq!(
        format!("{:?}", smoke1.stats),
        format!("{:?}", smoke2.stats),
        "replayed stats are bit-identical"
    );

    // Different tier: the key must differ, so no replay.
    let quick = onecell::run(ExpScale::Quick, &pool);
    let (h2, m2) = context::result_cache_stats();
    assert_eq!((h2, m2), (1, 2), "a quick cell must never replay a smoke result");
    assert_ne!(
        smoke1.stats.as_ref().map(|s| s.retired),
        quick.stats.as_ref().map(|s| s.retired),
        "tiers retire different uop counts"
    );

    context::set_result_cache(false);
}
