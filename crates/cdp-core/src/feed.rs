//! Uop supply for the core: a whole materialized [`Program`], or a seeded
//! streaming generator of which the core holds only a sliding window.
//!
//! The streaming path exists so that 100M–1B-uop workloads never hold a
//! `Vec<Uop>` proportional to the run length. The core's bounded-window
//! property makes this safe: ROB indices are consecutive and the oldest
//! in-flight index is never more than `rob_size` behind fetch, so every
//! uop the pipeline can still reference lives in a window of at most
//! `rob_size` plus one generation chunk.

use std::collections::VecDeque;

use cdp_types::{SnapshotError, VirtAddr};

use crate::uop::{Program, Uop, UopKind, NUM_REGS};

/// A chunked, deterministic uop generator driven by the core's fetch
/// stage.
///
/// Contract:
///
/// * [`UopSource::fill`] appends the next burst of uops to `out` (the
///   generator owns chunk sizing) and returns how many it appended.
///   Returning 0 means generation is complete.
/// * [`UopSource::exhausted`] must report `true` as soon as the final uop
///   has been appended by `fill` — not one call later. The core relies on
///   this to learn the program length before the last uop is fetched,
///   which keeps its `done()` predicate equivalent to the materialized
///   one at every cycle (including a final mispredicted branch, where the
///   ROB drains while fetch is still formally blocked).
/// * Generation must be deterministic and resumable:
///   [`UopSource::save_cursor`] / [`UopSource::restore_cursor`]
///   round-trip the complete generator state, so a restored source
///   replays bit-identical uops.
pub trait UopSource: std::fmt::Debug {
    /// Appends the next chunk of uops to `out`; returns the number
    /// appended (0 ⇔ generation complete).
    fn fill(&mut self, out: &mut VecDeque<Uop>) -> usize;

    /// True once every uop has been produced.
    fn exhausted(&self) -> bool;

    /// Clones the source, including its full generation state.
    fn box_clone(&self) -> Box<dyn UopSource>;

    /// Serializes the generation cursor.
    fn save_cursor(&self, enc: &mut cdp_snap::Enc);

    /// Restores a cursor written by [`UopSource::save_cursor`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`SnapshotError`] on truncation or corruption.
    fn restore_cursor(&mut self, dec: &mut cdp_snap::Dec<'_>) -> Result<(), SnapshotError>;
}

/// Where the core's uops come from.
#[derive(Clone, Debug)]
pub(crate) enum Feed<'p> {
    /// A fully materialized program (the classical path).
    Whole(&'p Program),
    /// A streaming source plus the sliding window of live uops.
    Stream(StreamFeed),
}

impl Feed<'_> {
    pub(crate) fn stream(source: Box<dyn UopSource>) -> Self {
        Feed::Stream(StreamFeed {
            source,
            window: VecDeque::new(),
            base: 0,
            total: None,
        })
    }
}

/// Sliding-window adapter over a [`UopSource`].
///
/// Invariant: `window[i]` is the uop at program index `base + i`, and
/// `base + window.len()` equals the number of uops produced so far.
#[derive(Debug)]
pub(crate) struct StreamFeed {
    source: Box<dyn UopSource>,
    pub(crate) window: VecDeque<Uop>,
    pub(crate) base: usize,
    /// Program length, learned at the fill that produced the final uop.
    pub(crate) total: Option<usize>,
}

impl Clone for StreamFeed {
    fn clone(&self) -> Self {
        StreamFeed {
            source: self.source.box_clone(),
            window: self.window.clone(),
            base: self.base,
            total: self.total,
        }
    }
}

impl StreamFeed {
    /// Returns the uop at program index `idx`, refilling the window from
    /// the source as needed. Before each refill, uops below `keep_from`
    /// (the oldest index the pipeline can still reference) are pruned, so
    /// resident memory stays O(ROB + chunk). Returns `None` once `idx` is
    /// past the end of the stream.
    pub(crate) fn uop_at(&mut self, idx: usize, keep_from: usize) -> Option<Uop> {
        while self.total.is_none() && idx >= self.base + self.window.len() {
            debug_assert!(keep_from >= self.base);
            while self.base < keep_from {
                self.window.pop_front();
                self.base += 1;
            }
            let appended = self.source.fill(&mut self.window);
            if appended == 0 || self.source.exhausted() {
                self.total = Some(self.base + self.window.len());
            }
        }
        if idx < self.base {
            return None;
        }
        self.window.get(idx - self.base).copied()
    }

    /// Number of uops produced by the source so far.
    pub(crate) fn produced(&self) -> usize {
        self.base + self.window.len()
    }

    /// Serializes window position, window contents, and source cursor.
    pub(crate) fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.usize(self.base);
        match self.total {
            Some(t) => {
                enc.bool(true);
                enc.usize(t);
            }
            None => enc.bool(false),
        }
        enc.seq_len(self.window.len());
        for u in &self.window {
            save_uop(enc, u);
        }
        self.source.save_cursor(enc);
    }

    /// Restores state written by [`StreamFeed::save_state`] into a feed
    /// whose source was constructed over the same workload.
    pub(crate) fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), SnapshotError> {
        self.base = dec.usize("feed base")?;
        self.total = if dec.bool("feed total flag")? {
            Some(dec.usize("feed total")?)
        } else {
            None
        };
        let n = dec.seq_len(MIN_UOP_BYTES, "feed window length")?;
        self.window.clear();
        for _ in 0..n {
            self.window.push_back(restore_uop(dec)?);
        }
        if let Some(t) = self.total {
            if t != self.base + self.window.len() {
                return Err(SnapshotError::Corrupt {
                    context: "feed total",
                });
            }
        }
        self.source.restore_cursor(dec)
    }
}

/// Smallest encoded uop (branch): pc + tag + taken + dst + 2 srcs.
const MIN_UOP_BYTES: usize = 4 + 1 + 1 + 1 + 2;

fn save_uop(enc: &mut cdp_snap::Enc, u: &Uop) {
    enc.u32(u.pc);
    match u.kind {
        UopKind::Alu { latency } => {
            enc.u8(0);
            enc.u8(latency);
        }
        UopKind::Fp { latency } => {
            enc.u8(1);
            enc.u8(latency);
        }
        UopKind::Load { vaddr } => {
            enc.u8(2);
            enc.u32(vaddr.0);
        }
        UopKind::Store { vaddr } => {
            enc.u8(3);
            enc.u32(vaddr.0);
        }
        UopKind::Branch { taken } => {
            enc.u8(4);
            enc.bool(taken);
        }
    }
    enc.u8(reg_byte(u.dst));
    enc.u8(reg_byte(u.srcs[0]));
    enc.u8(reg_byte(u.srcs[1]));
}

const NO_REG_BYTE: u8 = 0xff;

fn reg_byte(r: Option<u8>) -> u8 {
    r.unwrap_or(NO_REG_BYTE)
}

fn byte_reg(b: u8) -> Result<Option<u8>, SnapshotError> {
    match b {
        NO_REG_BYTE => Ok(None),
        r if (r as usize) < NUM_REGS => Ok(Some(r)),
        _ => Err(SnapshotError::Corrupt {
            context: "feed uop register",
        }),
    }
}

fn restore_uop(dec: &mut cdp_snap::Dec<'_>) -> Result<Uop, SnapshotError> {
    let pc = dec.u32("feed uop pc")?;
    let kind = match dec.u8("feed uop kind")? {
        0 => UopKind::Alu {
            latency: dec.u8("feed uop latency")?,
        },
        1 => UopKind::Fp {
            latency: dec.u8("feed uop latency")?,
        },
        2 => UopKind::Load {
            vaddr: VirtAddr(dec.u32("feed uop vaddr")?),
        },
        3 => UopKind::Store {
            vaddr: VirtAddr(dec.u32("feed uop vaddr")?),
        },
        4 => UopKind::Branch {
            taken: dec.bool("feed uop taken")?,
        },
        _ => {
            return Err(SnapshotError::Corrupt {
                context: "feed uop kind",
            })
        }
    };
    Ok(Uop {
        pc,
        kind,
        dst: byte_reg(dec.u8("feed uop dst")?)?,
        srcs: [
            byte_reg(dec.u8("feed uop src0")?)?,
            byte_reg(dec.u8("feed uop src1")?)?,
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A source emitting `total` ALU uops in bursts of `chunk`.
    #[derive(Clone, Debug)]
    struct CountSource {
        emitted: usize,
        total: usize,
        chunk: usize,
    }

    impl UopSource for CountSource {
        fn fill(&mut self, out: &mut VecDeque<Uop>) -> usize {
            let n = self.chunk.min(self.total - self.emitted);
            for i in 0..n {
                out.push_back(Uop::alu((self.emitted + i) as u32 * 4));
            }
            self.emitted += n;
            n
        }

        fn exhausted(&self) -> bool {
            self.emitted >= self.total
        }

        fn box_clone(&self) -> Box<dyn UopSource> {
            Box::new(self.clone())
        }

        fn save_cursor(&self, enc: &mut cdp_snap::Enc) {
            enc.usize(self.emitted);
        }

        fn restore_cursor(&mut self, dec: &mut cdp_snap::Dec<'_>) -> Result<(), SnapshotError> {
            self.emitted = dec.usize("count cursor")?;
            Ok(())
        }
    }

    #[test]
    fn window_slides_and_learns_total() {
        let mut f = match Feed::stream(Box::new(CountSource {
            emitted: 0,
            total: 10,
            chunk: 4,
        })) {
            Feed::Stream(s) => s,
            Feed::Whole(_) => unreachable!(),
        };
        for i in 0..10 {
            // Pretend the pipeline never references anything older than
            // two uops back.
            let u = f.uop_at(i, i.saturating_sub(2)).expect("in range");
            assert_eq!(u.pc, i as u32 * 4);
            assert!(f.window.len() <= 2 + 4, "window stays bounded");
        }
        assert_eq!(f.total, Some(10));
        assert_eq!(f.uop_at(10, 10), None);
    }

    #[test]
    fn exhaustion_is_learned_with_the_final_burst() {
        let mut f = match Feed::stream(Box::new(CountSource {
            emitted: 0,
            total: 8,
            chunk: 4,
        })) {
            Feed::Stream(s) => s,
            Feed::Whole(_) => unreachable!(),
        };
        // Fetching uop 7 (inside the final burst) must already pin the
        // total — the core's done() predicate depends on it.
        assert!(f.uop_at(7, 0).is_some());
        assert_eq!(f.total, Some(8));
    }

    #[test]
    fn state_roundtrip_is_exact() {
        let mut f = match Feed::stream(Box::new(CountSource {
            emitted: 0,
            total: 100,
            chunk: 7,
        })) {
            Feed::Stream(s) => s,
            Feed::Whole(_) => unreachable!(),
        };
        f.uop_at(40, 35);
        let mut enc = cdp_snap::Enc::new();
        f.save_state(&mut enc);
        let bytes = enc.into_bytes();

        let mut g = match Feed::stream(Box::new(CountSource {
            emitted: 0,
            total: 100,
            chunk: 7,
        })) {
            Feed::Stream(s) => s,
            Feed::Whole(_) => unreachable!(),
        };
        let mut dec = cdp_snap::Dec::new(&bytes);
        g.restore_state(&mut dec).expect("roundtrip");
        assert_eq!(g.base, f.base);
        assert_eq!(g.window, f.window);
        assert_eq!(g.total, f.total);
        for i in 41..100 {
            assert_eq!(g.uop_at(i, i), f.uop_at(i, i), "uop {i}");
        }
    }
}
