//! The out-of-order execution engine.
//!
//! A cycle-stepped model of the Table 1 machine:
//!
//! * **Fetch/dispatch** — up to `fetch_width` uops per cycle enter the
//!   reorder buffer, provided ROB/load-queue/store-queue entries are free.
//!   Branches are predicted with gshare at fetch; a misprediction stalls
//!   fetch until the branch executes, plus the 28-cycle redirect penalty.
//! * **Issue/execute** — each cycle, the oldest ready uops (all source
//!   registers available) issue, bounded by `issue_width` and by the
//!   integer/memory/FP unit pools. Loads and stores call into the
//!   [`MemoryModel`]; their completion cycle is whatever the memory system
//!   answers, so cache misses, bus contention, and prefetch hits all
//!   surface as dataflow delay. Stores release the pipeline at issue + 1
//!   (they drain from the store buffer) but hold their store-queue entry
//!   until the memory system finishes the line fill, which is how store
//!   misses create back-pressure.
//! * **Retire** — up to `retire_width` completed uops leave the ROB in
//!   program order per cycle.
//!
//! The model skips idle cycles (jumping to the next completion event), so
//! long memory stalls cost simulation time proportional to work, not to
//! stalled cycles.

use cdp_types::{AccessKind, CoreConfig};

use crate::feed::{Feed, UopSource};
use crate::gshare::Gshare;
use crate::uop::{Program, Uop, UopKind, NUM_REGS};
use crate::MemoryModel;

/// Execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles elapsed.
    pub cycles: u64,
    /// Uops retired.
    pub retired: u64,
    /// Load uops executed.
    pub loads: u64,
    /// Store uops executed.
    pub stores: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Branches whose gshare prediction was wrong.
    pub mispredicts: u64,
    /// Cycles fetch was stalled on a branch redirect.
    pub redirect_stall_cycles: u64,
    /// Loads satisfied by store-to-load forwarding (no cache access).
    pub forwarded_loads: u64,
    /// Sum over elapsed cycles of ROB occupancy (divide by `cycles` for
    /// the average in-flight window).
    pub rob_occupancy_cycles: u64,
}

impl CoreStats {
    /// Retired uops per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Average reorder-buffer occupancy (in-flight window size).
    pub fn avg_rob_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rob_occupancy_cycles as f64 / self.cycles as f64
        }
    }
}

/// `RobEntry::complete_at` sentinel: the uop has not issued yet.
const NOT_ISSUED: u64 = u64::MAX;
/// `RobEntry::sq_free_at` sentinel: no store-queue entry to free.
const NO_SQ: u64 = u64::MAX;
/// `RobEntry::srcs` sentinel: source slot unused. Indexes the
/// permanently-zero pad slot of `reg_ready`, so the per-entry readiness
/// check is two unconditional loads and a `max` — no branches.
const NO_REG: u8 = NUM_REGS as u8;

/// Uop classes, mirrored from [`UopKind`] so the per-cycle issue scan
/// never has to chase `program.uops` for entries that cannot issue.
const CLASS_ALU: u8 = 0;
const CLASS_FP: u8 = 1;
const CLASS_LOAD: u8 = 2;
const CLASS_STORE: u8 = 3;
const CLASS_BRANCH: u8 = 4;

#[derive(Clone, Copy, Debug)]
struct RobEntry {
    /// Index into the program.
    idx: u32,
    /// Source registers, copied from the uop at dispatch ([`NO_REG`] =
    /// slot unused). The issue stage scans the ROB every cycle; keeping
    /// the readiness inputs inline makes that scan touch one flat array.
    srcs: [u8; 2],
    /// [`CLASS_ALU`] .. [`CLASS_BRANCH`].
    class: u8,
    /// Completion cycle once issued ([`NOT_ISSUED`] before).
    complete_at: u64,
    /// For stores: cycle the store-queue entry frees (memory completion).
    sq_free_at: u64,
}

/// A resumable instance of the out-of-order core executing one program.
///
/// # Examples
///
/// ```
/// use cdp_core::{Core, FixedLatencyMemory, Program, Uop};
/// use cdp_types::CoreConfig;
///
/// let program: Program = (0..100).map(|i| Uop::alu(i * 4)).collect();
/// let mut core = Core::new(CoreConfig::default(), &program);
/// let mut mem = FixedLatencyMemory { latency: 3 };
/// core.run_to_completion(&mut mem);
/// let stats = core.stats();
/// assert_eq!(stats.retired, 100);
/// // A 3-wide machine retires ~3 independent ALU uops per cycle.
/// assert!(stats.ipc() > 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct Core<'p> {
    cfg: CoreConfig,
    /// Where uops come from: a borrowed whole program, or a streaming
    /// source of which only a sliding window is resident.
    feed: Feed<'p>,
    /// Next uop to fetch.
    fetch_idx: usize,
    /// Fetch is blocked until this cycle (branch redirect).
    fetch_resume_at: u64,
    rob: std::collections::VecDeque<RobEntry>,
    /// Ready cycle per architectural register, plus one permanently-zero
    /// pad slot indexed by [`NO_REG`] sources.
    reg_ready: [u64; NUM_REGS + 1],
    /// Store-queue completion times still occupying entries (min-heap:
    /// expired entries are popped instead of re-scanning every cycle).
    sq_busy: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
    /// Loads in flight (LQ occupancy): completion times (min-heap).
    lq_busy: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
    bp: Gshare,
    now: u64,
    stats: CoreStats,
    /// Program index of the mispredicted branch fetch is waiting on.
    pending_redirect: Option<usize>,
    /// Recent store addresses eligible for store-to-load forwarding:
    /// (word address, cycle the data is forwardable).
    forward_window: std::collections::VecDeque<(u32, u64)>,
    /// Loads in the ROB that have not issued (incremental mirror of a
    /// full ROB scan — LQ admission check runs per fetched uop).
    rob_loads_unissued: usize,
    /// Stores resident in the ROB (incremental, same reason).
    rob_stores: usize,
    /// ROB entries that have not issued yet (bounds the issue scan).
    rob_unissued: usize,
    /// Bit `p` set ⇔ the ROB entry at position `p` (0 = head) has not
    /// issued. Issued entries are invisible to the issue scan (skipping
    /// them has no side effects), so the scan walks set bits only —
    /// ascending bit order is exactly oldest-first program order.
    /// Maintained only while `rob_size` fits the mask width (128);
    /// larger ROBs take the plain linear scan.
    unissued_mask: u128,
    /// Cycle before which the issue scan is provably barren: the last
    /// full scan issued nothing, so every unissued entry's sources become
    /// ready no earlier than this. Issue scans while `now` is below it
    /// are skipped outright. `reg_ready` only changes when something
    /// issues (which resets this to 0), and newly fetched entries merge
    /// their ready cycle in, so the bound stays exact. 0 = no bound.
    issue_idle_until: u64,
    /// Uops retired since construction (never reset).
    total_retired: u64,
    /// Cycle at which statistics were last reset (warm-up boundary).
    stats_base_cycle: u64,
    /// When false, barren steps advance one cycle at a time instead of
    /// jumping to [`Self::next_event_cycle`]. The observable trajectory
    /// (stats, memory traffic, retirement order) is identical either way
    /// — the skipped cycles are provably barren — so this is a validation
    /// switch, not a semantic one. Deliberately excluded from
    /// [`Self::save_state`]: snapshots taken at the same retirement
    /// boundaries are byte-identical regardless of the setting.
    fast_forward: bool,
    /// ROB stall run-length histogram (`--profile-hist`); `None` keeps
    /// the step loop on its unobserved path (one branch, no work).
    stall_hist: Option<Box<cdp_obs::Hist>>,
    /// Consecutive barren cycles accumulated so far (flushed into
    /// [`Self::stall_hist`] when progress resumes). Fast-forward jumps
    /// only span provably barren cycles, so the accumulated run is
    /// identical whether the core jumps or single-steps.
    stall_run: u64,
}

impl<'p> Core<'p> {
    /// Creates a core ready to execute `program` from its first uop.
    pub fn new(cfg: CoreConfig, program: &'p Program) -> Self {
        Self::with_feed(cfg, Feed::Whole(program))
    }

    /// Creates a core fed by a streaming uop source instead of a
    /// materialized program. Only a sliding window of uops (the in-flight
    /// span plus one generation chunk) is ever resident.
    pub fn new_streaming(cfg: CoreConfig, source: Box<dyn UopSource>) -> Core<'static> {
        Core::with_feed(cfg, Feed::stream(source))
    }

    fn with_feed(cfg: CoreConfig, feed: Feed<'_>) -> Core<'_> {
        let bp = Gshare::new(cfg.gshare_log2_entries);
        let rob = std::collections::VecDeque::with_capacity(cfg.rob_size + 1);
        let forward_window = std::collections::VecDeque::with_capacity(cfg.store_buffer + 1);
        Core {
            cfg,
            feed,
            fetch_idx: 0,
            fetch_resume_at: 0,
            rob,
            reg_ready: [0; NUM_REGS + 1],
            sq_busy: std::collections::BinaryHeap::new(),
            lq_busy: std::collections::BinaryHeap::new(),
            bp,
            now: 0,
            stats: CoreStats::default(),
            pending_redirect: None,
            forward_window,
            rob_loads_unissued: 0,
            rob_stores: 0,
            rob_unissued: 0,
            unissued_mask: 0,
            issue_idle_until: 0,
            total_retired: 0,
            stats_base_cycle: 0,
            fast_forward: true,
            stall_hist: None,
            stall_run: 0,
        }
    }

    /// Enables or disables idle-cycle fast-forwarding (on by default).
    /// Disabling it forces the cycle-by-cycle reference schedule; the run
    /// produces bit-identical statistics either way, only slower.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Statistics so far.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Resets statistics (warm-up boundary, §2.2 of the paper). Cycle
    /// count restarts from zero; in-flight state is preserved.
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
        self.stats_base_cycle = self.now;
    }

    /// Installs a stall run-length histogram: barren (no fetch / issue /
    /// retire) cycle runs are recorded into it as they end. With no
    /// histogram installed the step loop pays one branch and does no
    /// other work.
    pub fn set_stall_hist(&mut self, hist: Box<cdp_obs::Hist>) {
        self.stall_hist = Some(hist);
        self.stall_run = 0;
    }

    /// Removes and returns the stall histogram, if one was installed.
    pub fn take_stall_hist(&mut self) -> Option<Box<cdp_obs::Hist>> {
        self.stall_run = 0;
        self.stall_hist.take()
    }

    /// Clears the stall histogram and any in-progress run (warm-up
    /// boundary: the measured distribution covers the measurement phase
    /// only, matching [`Self::reset_stats`]).
    pub fn reset_stall_hist(&mut self) {
        if let Some(h) = &mut self.stall_hist {
            h.clear();
        }
        self.stall_run = 0;
    }

    /// Whether every uop has been fetched and retired.
    ///
    /// For a streaming feed the program length is learned at the fill
    /// that produces the final uop — before that uop can be fetched — so
    /// this predicate matches the materialized one at every cycle.
    pub fn done(&self) -> bool {
        let fetched_all = match &self.feed {
            Feed::Whole(p) => self.fetch_idx >= p.len(),
            Feed::Stream(s) => matches!(s.total, Some(t) if self.fetch_idx >= t),
        };
        fetched_all && self.rob.is_empty()
    }

    /// Runs until at least `target_retired` uops have retired since
    /// construction, or the program completes. Returns `true` when the
    /// program has completed.
    pub fn run_until_retired<M: MemoryModel>(&mut self, mem: &mut M, target_retired: u64) -> bool {
        while !self.done() && self.total_retired < target_retired {
            self.step(mem);
        }
        self.done()
    }

    /// Runs the whole program to completion.
    pub fn run_to_completion<M: MemoryModel>(&mut self, mem: &mut M) {
        while !self.done() {
            self.step(mem);
        }
    }

    /// Executes one cycle (possibly fast-forwarding over provably idle
    /// cycles).
    pub fn step<M: MemoryModel>(&mut self, mem: &mut M) {
        let progressed = self.retire() | self.issue(mem) | self.fetch();
        if progressed || !self.fast_forward {
            if let Some(hist) = &mut self.stall_hist {
                if progressed {
                    if self.stall_run > 0 {
                        hist.record(self.stall_run);
                        self.stall_run = 0;
                    }
                } else {
                    self.stall_run += 1;
                }
            }
            self.advance_to(self.now + 1);
        } else {
            // Nothing happened: jump to the next event. The skipped
            // cycles are all barren, so they extend the current stall
            // run exactly as single-stepping them would.
            let next = self.next_event_cycle().max(self.now + 1);
            if self.stall_hist.is_some() {
                self.stall_run += next - self.now;
            }
            self.advance_to(next);
        }
    }

    fn advance_to(&mut self, cycle: u64) {
        debug_assert!(cycle > self.now || (self.done() && cycle >= self.now));
        self.stats.rob_occupancy_cycles +=
            self.rob.len() as u64 * cycle.saturating_sub(self.now);
        self.now = cycle;
        self.stats.cycles = self.now - self.stats_base_cycle;
    }

    fn next_event_cycle(&self) -> u64 {
        // This only runs after a step in which nothing progressed, so the
        // issue stage just completed a complete barren scan (or skipped
        // under a still-valid bound). With the bound in hand, the
        // earliest cycle anything can happen is O(1):
        //   * retire — the ROB head's completion (in-order retirement);
        //   * issue  — `issue_idle_until`, the proven earliest readiness
        //     of any unissued entry;
        //   * fetch  — a load/store-queue entry freeing (heap minima), a
        //     branch redirect resolving, or ROB space freeing (the retire
        //     event above).
        // A zero bound can only mean the barren scan saw a ready entry
        // blocked on a zero-sized unit pool (degenerate configuration):
        // fall back to scanning every in-flight completion.
        if self.issue_idle_until == 0 {
            return self.next_event_cycle_scan();
        }
        let mut next = u64::MAX;
        if let Some(e) = self.rob.front() {
            if e.complete_at != NOT_ISSUED && e.complete_at > self.now {
                next = next.min(e.complete_at);
            }
        }
        if self.issue_idle_until > self.now {
            next = next.min(self.issue_idle_until);
        }
        // Heap minima (entries at or before `now` were pruned at issue).
        // These queue-freeing wakeups (and the redirect below) only feed
        // the fetch admission check, so they could in principle be gated
        // on `fetch_idx < program.len()` — measured, that refinement is
        // statistically indistinguishable on the suite (the post-fetch
        // drain is a negligible slice of any run; see PERF.md), so the
        // simpler ungated form stays.
        for q in [&self.sq_busy, &self.lq_busy] {
            if let Some(&std::cmp::Reverse(c)) = q.peek() {
                if c > self.now {
                    next = next.min(c);
                }
            }
        }
        if self.fetch_resume_at > self.now {
            next = next.min(self.fetch_resume_at);
        }
        if next == u64::MAX {
            self.now + 1
        } else {
            next
        }
    }

    /// Full-scan fallback for [`Self::next_event_cycle`]. Register ready
    /// times need no separate scan even here: every future `reg_ready`
    /// value was written as the completion cycle of an issued entry that
    /// cannot have retired yet (retirement requires completion), so the
    /// ROB walk already covers it.
    fn next_event_cycle_scan(&self) -> u64 {
        let mut next = u64::MAX;
        for e in &self.rob {
            if e.complete_at != NOT_ISSUED && e.complete_at > self.now {
                next = next.min(e.complete_at);
            }
        }
        for q in [&self.sq_busy, &self.lq_busy] {
            if let Some(&std::cmp::Reverse(c)) = q.peek() {
                if c > self.now {
                    next = next.min(c);
                }
            }
        }
        if self.fetch_resume_at > self.now {
            next = next.min(self.fetch_resume_at);
        }
        if next == u64::MAX {
            self.now + 1
        } else {
            next
        }
    }

    /// Retire stage. Returns true if anything retired.
    fn retire(&mut self) -> bool {
        let mut any = false;
        for _ in 0..self.cfg.retire_width {
            match self.rob.front() {
                Some(e) if e.complete_at != NOT_ISSUED && e.complete_at <= self.now => {
                    let e = self.rob.pop_front().expect("front exists");
                    if self.cfg.rob_size <= 128 {
                        // The popped head had issued, so bit 0 is clear.
                        debug_assert_eq!(self.unissued_mask & 1, 0);
                        self.unissued_mask >>= 1;
                    }
                    if e.class == CLASS_STORE {
                        self.rob_stores -= 1;
                    }
                    // Free queue entries whose back-pressure window ended.
                    if e.sq_free_at != NO_SQ && e.sq_free_at > self.now {
                        self.sq_busy.push(std::cmp::Reverse(e.sq_free_at));
                    }
                    self.total_retired += 1;
                    self.stats.retired += 1;
                    any = true;
                }
                _ => break,
            }
        }
        any
    }

    /// Issue stage. Returns true if anything issued.
    fn issue<M: MemoryModel>(&mut self, mem: &mut M) -> bool {
        // Prune queue-occupancy trackers.
        let now = self.now;
        while matches!(self.sq_busy.peek(), Some(&std::cmp::Reverse(c)) if c <= now) {
            self.sq_busy.pop();
        }
        while matches!(self.lq_busy.peek(), Some(&std::cmp::Reverse(c)) if c <= now) {
            self.lq_busy.pop();
        }

        // A prior barren scan proved no source becomes ready before
        // `issue_idle_until`; until then the scan below would examine
        // every unissued entry and issue nothing.
        if now < self.issue_idle_until {
            return false;
        }

        let mut issued = 0;
        let mut int_used = 0;
        let mut mem_used = 0;
        let mut fp_used = 0;
        let mut any = false;
        let mut unissued_left = self.rob_unissued;
        // Idle bound computed over this pass: the earliest cycle any
        // still-unissued entry can become ready. `min_ready` collects the
        // readiness of entries seen not-ready; `min_complete` collects the
        // `reg_ready` writes made by entries issuing in this same pass
        // (a consumer already visited may become ready no earlier than
        // its producer completes). The bound is only sound if the scan
        // visited every unissued entry (`scanned_all`).
        let mut min_ready = u64::MAX;
        let mut min_complete = u64::MAX;
        let mut scanned_all = true;
        let mut blocked_ready = false;
        let use_mask = self.cfg.rob_size <= 128;

        // Split borrows so the scan can index the deque's contiguous
        // slices directly (per-slot `VecDeque` indexing re-pays the wrap
        // and bounds checks on every entry).
        let Core {
            cfg,
            feed,
            rob,
            reg_ready,
            sq_busy: _,
            lq_busy,
            now,
            stats,
            pending_redirect,
            forward_window,
            rob_loads_unissued,
            rob_unissued,
            unissued_mask,
            fetch_resume_at,
            ..
        } = self;
        let now = *now;
        let (front, back) = rob.as_mut_slices();
        let front_len = front.len();
        let rob_len = front_len + back.len();

        // Positions to examine: set bits of the unissued mask (ascending
        // = oldest-first), or every position when the mask is not
        // maintained. Both orders match the original full scan with its
        // no-op visits to issued entries removed.
        let mut mask_iter = *unissued_mask;
        let mut lin = 0usize;
        loop {
            let p = if use_mask {
                if mask_iter == 0 {
                    break;
                }
                let p = mask_iter.trailing_zeros() as usize;
                mask_iter &= mask_iter - 1;
                p
            } else {
                if lin >= rob_len {
                    break;
                }
                let p = lin;
                lin += 1;
                p
            };
            if unissued_left == 0 {
                break;
            }
            if issued >= cfg.issue_width
                || (int_used >= cfg.int_units
                    && fp_used >= cfg.fp_units
                    && mem_used >= cfg.mem_units)
            {
                // Unissued entries remain unexamined; any of them could
                // be ready right now, so no idle bound can be claimed.
                scanned_all = false;
                break;
            }
            let entry = if p < front_len {
                &mut front[p]
            } else {
                &mut back[p - front_len]
            };
            if entry.complete_at != NOT_ISSUED {
                debug_assert!(!use_mask, "mask bit set for an issued entry");
                continue;
            }
            unissued_left -= 1;
            // Source readiness, from the inline copies (absent
            // sources hit the zero pad slot).
            let ready_at =
                reg_ready[entry.srcs[0] as usize].max(reg_ready[entry.srcs[1] as usize]);
            if ready_at > now {
                if ready_at < min_ready {
                    min_ready = ready_at;
                }
                continue;
            }
            // Functional unit availability.
            let (unit_ok, unit): (bool, u8) = match entry.class {
                CLASS_ALU | CLASS_BRANCH => (int_used < cfg.int_units, 0),
                CLASS_FP => (fp_used < cfg.fp_units, 1),
                _ => (mem_used < cfg.mem_units, 2),
            };
            if !unit_ok {
                blocked_ready = true;
                continue;
            }
            let uop = match &*feed {
                Feed::Whole(p) => p.uops[entry.idx as usize],
                // ROB indices are never pruned from the window (the prune
                // floor is the oldest in-flight index), so this read is
                // always in range.
                Feed::Stream(s) => s.window[entry.idx as usize - s.base],
            };
            match unit {
                0 => int_used += 1,
                1 => fp_used += 1,
                _ => mem_used += 1,
            }
            issued += 1;
            any = true;

            let (complete_at, sq_free_at) = match uop.kind {
                UopKind::Alu { latency } | UopKind::Fp { latency } => {
                    (now + latency as u64, None)
                }
                UopKind::Branch { taken } => {
                    stats.branches += 1;
                    // Prediction was recorded at fetch via `mispredicted`
                    // bookkeeping below; resolution happens here.
                    let _ = taken;
                    (now + 1, None)
                }
                UopKind::Load { vaddr } => {
                    stats.loads += 1;
                    // Store-to-load forwarding: a pending store to the same
                    // word supplies the data without a cache access. A
                    // counting-filter fast path over this scan was measured
                    // suite-unchanged under interleaved A/B (the window is
                    // small or empty in the common case, so the walk is
                    // already cheap; see PERF.md) and reverted.
                    let forwarded = forward_window
                        .iter()
                        .rev()
                        .find(|&&(a, _)| a == vaddr.0)
                        .map(|&(_, ready)| ready);
                    match forwarded {
                        Some(ready) => {
                            stats.forwarded_loads += 1;
                            let done = ready.max(now) + 1;
                            lq_busy.push(std::cmp::Reverse(done));
                            (done, None)
                        }
                        None => {
                            let done = mem.access(uop.pc, vaddr, AccessKind::Load, now);
                            lq_busy.push(std::cmp::Reverse(done));
                            (done, None)
                        }
                    }
                }
                UopKind::Store { vaddr } => {
                    stats.stores += 1;
                    let done = mem.access(uop.pc, vaddr, AccessKind::Store, now);
                    // Forwardable as soon as the store has its data (next
                    // cycle); the window is bounded by the SQ capacity.
                    forward_window.push_back((vaddr.0, now + 1));
                    while forward_window.len() > cfg.store_buffer {
                        forward_window.pop_front();
                    }
                    // Store releases the pipeline next cycle; its SQ entry
                    // is busy until the memory system completes.
                    (now + 1, Some(done))
                }
            };
            entry.complete_at = complete_at;
            entry.sq_free_at = sq_free_at.unwrap_or(NO_SQ);
            if use_mask {
                *unissued_mask &= !(1u128 << p);
            }
            *rob_unissued -= 1;
            if entry.class == CLASS_LOAD {
                *rob_loads_unissued -= 1;
            }
            if let Some(dst) = uop.dst {
                reg_ready[dst as usize] = complete_at;
                min_complete = min_complete.min(complete_at);
            }
            // Branch redirect: if this branch was fetched mispredicted,
            // fetch resumes after it resolves plus the penalty.
            if *pending_redirect == Some(entry.idx as usize) {
                *pending_redirect = None;
                let resume_at = complete_at + cfg.mispredict_penalty;
                stats.redirect_stall_cycles += resume_at.saturating_sub(now);
                *fetch_resume_at = resume_at;
            }
        }
        // Complete scan: every unissued entry was examined, so the
        // earliest future readiness (including readiness unlocked by this
        // pass's own `reg_ready` writes, bounded below by the writers'
        // completions) bounds every scan until then. A ready-but-unit-
        // blocked entry stays ready next cycle, and an early break leaves
        // entries unexamined — either forfeits the bound.
        self.issue_idle_until = if blocked_ready || !scanned_all {
            0
        } else {
            min_ready.min(min_complete)
        };
        any
    }

    /// The uop at `fetch_idx`, or `None` at program end. On the streaming
    /// path this refills the window from the source; the prune floor is
    /// the oldest in-flight ROB index (every younger uop may still be
    /// read by the issue stage), clamped to `fetch_idx` when the ROB is
    /// empty.
    #[inline]
    fn fetch_uop(&mut self) -> Option<Uop> {
        let idx = self.fetch_idx;
        match &mut self.feed {
            Feed::Whole(p) => p.uops.get(idx).copied(),
            Feed::Stream(s) => {
                let keep_from = self
                    .rob
                    .front()
                    .map_or(idx, |e| (e.idx as usize).min(idx));
                s.uop_at(idx, keep_from)
            }
        }
    }

    /// Fetch/dispatch stage. Returns true if anything dispatched.
    fn fetch(&mut self) -> bool {
        if self.now < self.fetch_resume_at {
            return false;
        }
        let mut any = false;
        for _ in 0..self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_size {
                break;
            }
            let Some(uop) = self.fetch_uop() else {
                break;
            };
            match uop.kind {
                UopKind::Load { .. }
                    if self.lq_busy.len() + self.rob_loads_unissued >= self.cfg.load_buffer => {
                        break;
                    }
                UopKind::Store { .. }
                    if self.sq_busy.len() + self.rob_stores >= self.cfg.store_buffer => {
                        break;
                    }
                UopKind::Load { .. } => self.rob_loads_unissued += 1,
                UopKind::Store { .. } => self.rob_stores += 1,
                _ => {}
            }
            self.rob_unissued += 1;
            let entry = RobEntry {
                idx: self.fetch_idx as u32,
                srcs: [
                    uop.srcs[0].unwrap_or(NO_REG),
                    uop.srcs[1].unwrap_or(NO_REG),
                ],
                class: match uop.kind {
                    UopKind::Alu { .. } => CLASS_ALU,
                    UopKind::Fp { .. } => CLASS_FP,
                    UopKind::Load { .. } => CLASS_LOAD,
                    UopKind::Store { .. } => CLASS_STORE,
                    UopKind::Branch { .. } => CLASS_BRANCH,
                },
                complete_at: NOT_ISSUED,
                sq_free_at: NO_SQ,
            };
            // Keep the idle bound exact: a dispatched entry may be ready
            // earlier than everything already waiting. `reg_ready` only
            // changes inside issue scans and the bound is recomputed at
            // the end of each, so the ready cycle computed here is the
            // one the next scan would compute.
            if self.issue_idle_until != 0 {
                let ready_at = self.reg_ready[entry.srcs[0] as usize]
                    .max(self.reg_ready[entry.srcs[1] as usize]);
                self.issue_idle_until = if ready_at <= self.now {
                    0
                } else {
                    self.issue_idle_until.min(ready_at)
                };
            }
            // Branch prediction at fetch.
            if let UopKind::Branch { taken } = uop.kind {
                let predicted = self.bp.predict(uop.pc);
                self.bp.update(uop.pc, predicted, taken);
                if predicted != taken {
                    self.stats.mispredicts += 1;
                    self.pending_redirect = Some(self.fetch_idx);
                    self.rob.push_back(entry);
                    if self.cfg.rob_size <= 128 {
                        self.unissued_mask |= 1u128 << (self.rob.len() - 1);
                    }
                    self.fetch_idx += 1;
                    // Stop fetching: the front end is on the wrong path
                    // until this branch resolves.
                    self.fetch_resume_at = u64::MAX;
                    return true;
                }
            }
            self.rob.push_back(entry);
            if self.cfg.rob_size <= 128 {
                self.unissued_mask |= 1u128 << (self.rob.len() - 1);
            }
            self.fetch_idx += 1;
            any = true;
        }
        any
    }

    /// Serializes the complete pipeline state: ROB (in order), register
    /// scoreboard, queue-occupancy heaps (sorted — heap entries are plain
    /// cycle numbers, so sorted reinsertion is observationally identical),
    /// branch predictor, forwarding window, and all counters.
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.usize(self.fetch_idx);
        enc.u64(self.fetch_resume_at);
        enc.u64(self.now);
        enc.u64(self.issue_idle_until);
        enc.u64(self.total_retired);
        enc.u64(self.stats_base_cycle);
        enc.u128(self.unissued_mask);
        enc.usize(self.rob_loads_unissued);
        enc.usize(self.rob_stores);
        enc.usize(self.rob_unissued);
        match self.pending_redirect {
            Some(idx) => {
                enc.bool(true);
                enc.usize(idx);
            }
            None => enc.bool(false),
        }
        self.stats.save_state(enc);
        for r in &self.reg_ready {
            enc.u64(*r);
        }
        enc.seq_len(self.rob.len());
        for e in &self.rob {
            enc.u32(e.idx);
            enc.u8(e.srcs[0]);
            enc.u8(e.srcs[1]);
            enc.u8(e.class);
            enc.u64(e.complete_at);
            enc.u64(e.sq_free_at);
        }
        for heap in [&self.sq_busy, &self.lq_busy] {
            let mut entries: Vec<u64> = heap.iter().map(|r| r.0).collect();
            entries.sort_unstable();
            enc.seq_len(entries.len());
            for c in entries {
                enc.u64(c);
            }
        }
        enc.seq_len(self.forward_window.len());
        for &(addr, ready) in &self.forward_window {
            enc.u32(addr);
            enc.u64(ready);
        }
        self.bp.save_state(enc);
        enc.bool(self.stall_hist.is_some());
        if let Some(hist) = &self.stall_hist {
            enc.u64(self.stall_run);
            hist.save_state(enc);
        }
        // Feed kind last: a whole-program snapshot carries no extra
        // state; a streaming snapshot appends its window and the source's
        // generation cursor so resume replays bit-identical uops.
        match &self.feed {
            Feed::Whole(_) => enc.bool(false),
            Feed::Stream(s) => {
                enc.bool(true);
                s.save_state(enc);
            }
        }
    }

    /// Restores state written by [`Core::save_state`] into a freshly
    /// constructed core over the *same* program and configuration.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation or on
    /// structurally impossible state (ROB deeper than `rob_size`, a uop
    /// index past the program end, an unknown uop class).
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        use cdp_types::SnapshotError;
        let fetch_idx = dec.usize("core fetch_idx")?;
        // Streaming feeds validate index coverage after their window is
        // restored (end of this function).
        if let Feed::Whole(p) = &self.feed {
            if fetch_idx > p.len() {
                return Err(SnapshotError::Corrupt {
                    context: "core fetch_idx",
                });
            }
        }
        self.fetch_idx = fetch_idx;
        self.fetch_resume_at = dec.u64("core fetch_resume_at")?;
        self.now = dec.u64("core now")?;
        self.issue_idle_until = dec.u64("core issue_idle_until")?;
        self.total_retired = dec.u64("core total_retired")?;
        self.stats_base_cycle = dec.u64("core stats_base_cycle")?;
        self.unissued_mask = dec.u128("core unissued_mask")?;
        self.rob_loads_unissued = dec.usize("core rob_loads_unissued")?;
        self.rob_stores = dec.usize("core rob_stores")?;
        self.rob_unissued = dec.usize("core rob_unissued")?;
        self.pending_redirect = if dec.bool("core pending_redirect flag")? {
            Some(dec.usize("core pending_redirect")?)
        } else {
            None
        };
        self.stats.restore_state(dec)?;
        for r in self.reg_ready.iter_mut() {
            *r = dec.u64("core reg_ready")?;
        }
        let rob_len = dec.seq_len(4 + 3 + 8 + 8, "core rob length")?;
        if rob_len > self.cfg.rob_size {
            return Err(SnapshotError::Corrupt {
                context: "core rob length",
            });
        }
        self.rob.clear();
        for _ in 0..rob_len {
            let idx = dec.u32("core rob idx")?;
            if let Feed::Whole(p) = &self.feed {
                if idx as usize >= p.len() {
                    return Err(SnapshotError::Corrupt {
                        context: "core rob idx",
                    });
                }
            }
            let srcs = [dec.u8("core rob src0")?, dec.u8("core rob src1")?];
            if srcs.iter().any(|&s| s > NO_REG) {
                return Err(SnapshotError::Corrupt {
                    context: "core rob src register",
                });
            }
            let class = dec.u8("core rob class")?;
            if class > CLASS_BRANCH {
                return Err(SnapshotError::Corrupt {
                    context: "core rob class",
                });
            }
            self.rob.push_back(RobEntry {
                idx,
                srcs,
                class,
                complete_at: dec.u64("core rob complete_at")?,
                sq_free_at: dec.u64("core rob sq_free_at")?,
            });
        }
        self.sq_busy.clear();
        let n = dec.seq_len(8, "core sq_busy length")?;
        for _ in 0..n {
            self.sq_busy
                .push(std::cmp::Reverse(dec.u64("core sq_busy entry")?));
        }
        self.lq_busy.clear();
        let n = dec.seq_len(8, "core lq_busy length")?;
        for _ in 0..n {
            self.lq_busy
                .push(std::cmp::Reverse(dec.u64("core lq_busy entry")?));
        }
        self.forward_window.clear();
        let n = dec.seq_len(4 + 8, "core forward window length")?;
        for _ in 0..n {
            let addr = dec.u32("core forward addr")?;
            let ready = dec.u64("core forward ready")?;
            self.forward_window.push_back((addr, ready));
        }
        self.bp.restore_state(dec)?;
        // Histogram presence must match the restoring run's
        // configuration (mirroring the hierarchy's tracer rule): a
        // snapshot observed differently is not the same simulation.
        let has_hist = dec.bool("core stall hist presence")?;
        if has_hist != self.stall_hist.is_some() {
            return Err(SnapshotError::Corrupt {
                context: "core stall hist presence",
            });
        }
        if has_hist {
            self.stall_run = dec.u64("core stall_run")?;
            self.stall_hist = Some(Box::new(cdp_obs::Hist::restore_state(dec)?));
        } else {
            self.stall_run = 0;
        }
        // Feed kind must match the restoring core's construction (same
        // rule as the histogram above): a snapshot taken streaming is not
        // restorable into a materialized core, or vice versa.
        let is_stream = dec.bool("core feed kind")?;
        match (&mut self.feed, is_stream) {
            (Feed::Whole(_), false) => {}
            (Feed::Stream(s), true) => {
                s.restore_state(dec)?;
                let produced = s.produced();
                if self.fetch_idx > produced
                    || self
                        .rob
                        .iter()
                        .any(|e| (e.idx as usize) < s.base || e.idx as usize >= produced)
                {
                    return Err(SnapshotError::Corrupt {
                        context: "core feed coverage",
                    });
                }
            }
            _ => {
                return Err(SnapshotError::Corrupt {
                    context: "core feed kind",
                });
            }
        }
        Ok(())
    }
}

impl CoreStats {
    /// Serializes every counter.
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.cycles);
        enc.u64(self.retired);
        enc.u64(self.loads);
        enc.u64(self.stores);
        enc.u64(self.branches);
        enc.u64(self.mispredicts);
        enc.u64(self.redirect_stall_cycles);
        enc.u64(self.forwarded_loads);
        enc.u64(self.rob_occupancy_cycles);
    }

    /// Restores counters written by [`CoreStats::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        self.cycles = dec.u64("core stats cycles")?;
        self.retired = dec.u64("core stats retired")?;
        self.loads = dec.u64("core stats loads")?;
        self.stores = dec.u64("core stats stores")?;
        self.branches = dec.u64("core stats branches")?;
        self.mispredicts = dec.u64("core stats mispredicts")?;
        self.redirect_stall_cycles = dec.u64("core stats redirect_stall_cycles")?;
        self.forwarded_loads = dec.u64("core stats forwarded_loads")?;
        self.rob_occupancy_cycles = dec.u64("core stats rob_occupancy_cycles")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::Uop;
    use crate::FixedLatencyMemory;
    use cdp_types::VirtAddr;

    fn run(program: &Program, latency: u64) -> CoreStats {
        let mut core = Core::new(CoreConfig::default(), program);
        let mut mem = FixedLatencyMemory { latency };
        core.run_to_completion(&mut mem);
        core.stats()
    }

    #[test]
    fn empty_program_terminates() {
        let p = Program::default();
        let s = run(&p, 3);
        assert_eq!(s.retired, 0);
    }

    #[test]
    fn independent_alus_reach_full_width() {
        let p: Program = (0..3000).map(|i| Uop::alu(i * 4)).collect();
        let s = run(&p, 3);
        assert_eq!(s.retired, 3000);
        assert!(s.ipc() > 2.5, "ipc {}", s.ipc());
    }

    #[test]
    fn dependent_chain_serializes() {
        // r1 = r1 + 1, 1000 times: ~1 IPC max.
        let p: Program = (0..1000)
            .map(|i| Uop::alu_dep(i * 4, 1, [Some(1), None], 1))
            .collect();
        let s = run(&p, 3);
        assert!(s.ipc() < 1.2, "dependent chain ipc {}", s.ipc());
    }

    #[test]
    fn pointer_chase_pays_memory_latency_per_hop() {
        // 100 loads, each feeding the next one's address.
        let p: Program = (0..100)
            .map(|i| Uop::load(i * 4, VirtAddr(0x1000 + i * 64), 1, Some(1)))
            .collect();
        let s = run(&p, 100);
        // Each hop costs >= 100 cycles: at least 100*100 cycles total.
        assert!(s.cycles >= 100 * 100, "cycles {}", s.cycles);
        assert_eq!(s.loads, 100);
    }

    #[test]
    fn independent_loads_overlap() {
        // 100 independent loads into distinct registers: MLP limited by
        // 2 mem ports, not by latency.
        let p: Program = (0..100)
            .map(|i| Uop::load(i * 4, VirtAddr(0x1000 + i * 64), (i % 32) as u8 + 8, None))
            .collect();
        let s = run(&p, 100);
        assert!(
            s.cycles < 100 * 100 / 2,
            "independent loads must overlap: {} cycles",
            s.cycles
        );
    }

    #[test]
    fn mispredicted_branches_cost_penalty() {
        // Random outcomes -> ~half mispredict, each costing >= 28 cycles.
        let mut x = 0x9e3779b9u64;
        let mut uops = Vec::new();
        for i in 0..500u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            uops.push(Uop::branch(i * 4, (x >> 63) == 1, None));
        }
        let p = Program::new(uops);
        let s = run(&p, 3);
        assert!(s.mispredicts > 100, "mispredicts {}", s.mispredicts);
        assert!(
            s.cycles > s.mispredicts * 28,
            "each mispredict costs the redirect penalty: {} cycles, {} mispredicts",
            s.cycles,
            s.mispredicts
        );
    }

    #[test]
    fn predictable_branches_are_cheap() {
        let p: Program = (0..500).map(|_| Uop::branch(0x40, true, None)).collect();
        let s = run(&p, 3);
        // Allow the gshare history warm-up transient (~14 churned counters).
        assert!(s.mispredicts < 30, "always-taken learns: {}", s.mispredicts);
    }

    #[test]
    fn store_queue_backpressure() {
        // 200 stores with huge memory latency: SQ (32 entries) limits
        // in-flight stores, so the run takes many latency periods.
        let p: Program = (0..200)
            .map(|i| Uop::store(i * 4, VirtAddr(0x1_0000 + i * 64), None, None))
            .collect();
        let s = run(&p, 1000);
        assert_eq!(s.stores, 200);
        // 200 stores / 32 SQ entries ≈ 7 waves of ~1000 cycles.
        assert!(s.cycles >= 5000, "SQ pressure expected: {} cycles", s.cycles);
    }

    #[test]
    fn rob_bounds_inflight_window() {
        // A load with 10_000-cycle latency at the head blocks retire; the
        // ROB (128) fills and fetch stops, so cycles ~ latency, retired all.
        let mut uops = vec![Uop::load(0, VirtAddr(0x1000), 1, None)];
        for i in 1..1000 {
            uops.push(Uop::alu(i * 4));
        }
        let s = run(&Program::new(uops), 10_000);
        assert_eq!(s.retired, 1000);
        assert!(s.cycles >= 10_000);
        assert!(s.cycles < 11_500, "post-miss uops drain quickly: {}", s.cycles);
    }

    #[test]
    fn rob_occupancy_tracks_stalls() {
        // A long-latency load at the head keeps the ROB full while the
        // trailing ALUs wait to retire: average occupancy near capacity.
        let mut uops = vec![Uop::load(0, VirtAddr(0x1000), 1, None)];
        for i in 1..400 {
            uops.push(Uop::alu(i * 4));
        }
        let stalled = run(&Program::new(uops), 5_000);
        assert!(
            stalled.avg_rob_occupancy() > 64.0,
            "stalled occupancy {:.1}",
            stalled.avg_rob_occupancy()
        );
        // Free-flowing ALUs drain as fast as they fetch: small window.
        let flowing: Program = (0..400).map(|i| Uop::alu(i * 4)).collect();
        let f = run(&flowing, 3);
        assert!(
            f.avg_rob_occupancy() < stalled.avg_rob_occupancy() / 2.0,
            "flowing {:.1} vs stalled {:.1}",
            f.avg_rob_occupancy(),
            stalled.avg_rob_occupancy()
        );
    }

    #[test]
    fn single_fp_unit_serializes_fp_work() {
        let fp: Program = (0..300)
            .map(|i| Uop {
                pc: i * 4,
                kind: UopKind::Fp { latency: 1 },
                dst: None,
                srcs: [None, None],
            })
            .collect();
        let s_fp = run(&fp, 3);
        let alu: Program = (0..300).map(|i| Uop::alu(i * 4)).collect();
        let s_alu = run(&alu, 3);
        // One FP unit vs three integer units: the FP version must take
        // roughly 3x the cycles.
        assert!(
            s_fp.cycles > s_alu.cycles * 2,
            "fp {} vs alu {}",
            s_fp.cycles,
            s_alu.cycles
        );
    }

    #[test]
    fn two_memory_ports_bound_load_issue() {
        // 300 independent L1-hit-speed loads: at 2 ports, at least 150
        // cycles; integer work of the same length is 3-wide.
        let p: Program = (0..300)
            .map(|i| Uop::load(i * 4, VirtAddr(0x1000 + (i % 8) * 64), (i % 8) as u8 + 8, None))
            .collect();
        let s = run(&p, 1);
        assert!(s.cycles >= 150, "mem ports must bound issue: {}", s.cycles);
    }

    #[test]
    fn wider_machine_runs_faster() {
        let p: Program = (0..3000).map(|i| Uop::alu(i * 4)).collect();
        let narrow_cfg = CoreConfig {
            fetch_width: 1,
            issue_width: 1,
            retire_width: 1,
            int_units: 1,
            ..CoreConfig::default()
        };
        let mut narrow = Core::new(narrow_cfg, &p);
        let mut mem = FixedLatencyMemory { latency: 3 };
        narrow.run_to_completion(&mut mem);
        let wide = run(&p, 3);
        assert!(
            narrow.stats().cycles > wide.cycles * 2,
            "1-wide {} vs 3-wide {}",
            narrow.stats().cycles,
            wide.cycles
        );
    }

    #[test]
    fn load_queue_bounds_memory_level_parallelism() {
        // Independent long-latency loads: 48 LQ entries cap the overlap,
        // so 96 loads need at least two full latency windows.
        let p: Program = (0..96)
            .map(|i| Uop::load(i * 4, VirtAddr(0x10_0000 + i * 64), (i % 32) as u8 + 8, None))
            .collect();
        let s = run(&p, 5_000);
        assert!(
            s.cycles >= 10_000,
            "LQ must cap MLP at 48: {} cycles",
            s.cycles
        );
        assert!(s.cycles < 20_000, "but not serialize: {}", s.cycles);
    }

    #[test]
    fn store_to_load_forwarding_skips_memory() {
        // store [X]; load [X] — the load forwards and never touches the
        // hierarchy (latency 10_000 would otherwise dominate).
        let uops = vec![
            Uop::store(0, VirtAddr(0x5000), None, None),
            Uop::load(4, VirtAddr(0x5000), 1, None),
            Uop::load(8, VirtAddr(0x6000), 2, None),
        ];
        let s = run(&Program::new(uops), 10_000);
        assert_eq!(s.forwarded_loads, 1);
        // Only the un-forwarded load (plus the store's fill) pays latency.
        assert!(s.cycles < 25_000, "{}", s.cycles);
    }

    #[test]
    fn forwarding_window_is_bounded_by_store_buffer() {
        // 40 distinct stores (> 32 SQ entries), then a load to the first
        // store's address: its window entry has been displaced.
        let mut uops: Vec<Uop> = (0..40)
            .map(|i| Uop::store(i * 4, VirtAddr(0x5000 + i * 64), None, None))
            .collect();
        uops.push(Uop::load(400, VirtAddr(0x5000), 1, None));
        let s = run(&Program::new(uops), 50);
        assert_eq!(s.forwarded_loads, 0);
    }

    #[test]
    fn reset_stats_clears_counts_midstream() {
        let p: Program = (0..600).map(|i| Uop::alu(i * 4)).collect();
        let mut core = Core::new(CoreConfig::default(), &p);
        let mut mem = FixedLatencyMemory { latency: 3 };
        core.run_until_retired(&mut mem, 300);
        assert!(core.stats().retired >= 300);
        core.reset_stats();
        assert_eq!(core.stats().retired, 0);
        assert_eq!(core.stats().cycles, 0);
        core.run_to_completion(&mut mem);
        assert!(core.stats().retired <= 310, "only post-reset uops counted");
        assert!(core.done());
    }

    mod props {
        use super::*;
        use cdp_types::rng::Rng;

        fn random_program(rng: &mut Rng) -> Program {
            let n = rng.gen_range_usize(1..120);
            (0..n)
                .map(|i| {
                    let kind = rng.gen_range_u8(0..5);
                    let reg = rng.gen_range_u8(0..8);
                    let flag = rng.gen_bool(0.5);
                    let pc = (i as u32) * 4;
                    match kind {
                        0 => Uop::alu(pc),
                        1 => Uop::alu_dep(pc, reg + 1, [Some((reg % 4) + 1), None], 2),
                        2 => Uop::load(pc, VirtAddr(0x1000 + i as u32 * 32), reg + 1, None),
                        3 => Uop::store(pc, VirtAddr(0x9000 + i as u32 * 32), None, None),
                        _ => Uop::branch(pc, flag, Some((reg % 4) + 1)),
                    }
                })
                .collect()
        }

        /// Every program terminates with all uops retired, op counts
        /// matching the trace, and IPC bounded by the machine width.
        #[test]
        fn any_program_terminates_and_accounts() {
            let mut rng = Rng::seed_from_u64(0xc04e_0001);
            for _ in 0..48 {
                let p = random_program(&mut rng);
                let mut core = Core::new(CoreConfig::default(), &p);
                let mut mem = FixedLatencyMemory { latency: 7 };
                core.run_to_completion(&mut mem);
                let s = core.stats();
                assert_eq!(s.retired as usize, p.len());
                assert_eq!(
                    s.loads as usize + s.stores as usize,
                    p.num_loads() + p.num_stores()
                );
                assert_eq!(s.branches as usize, p.num_branches());
                assert!(s.ipc() <= 3.0 + 1e-9, "ipc {}", s.ipc());
                assert!(s.cycles >= (p.len() as u64).div_ceil(3));
            }
        }

        /// Higher memory latency never makes a program faster.
        #[test]
        fn latency_monotonicity() {
            let mut rng = Rng::seed_from_u64(0xc04e_0002);
            for _ in 0..48 {
                let p = random_program(&mut rng);
                let run_at = |lat: u64| {
                    let mut core = Core::new(CoreConfig::default(), &p);
                    let mut mem = FixedLatencyMemory { latency: lat };
                    core.run_to_completion(&mut mem);
                    core.stats().cycles
                };
                assert!(run_at(100) >= run_at(3));
            }
        }

        /// Determinism: identical runs produce identical statistics.
        #[test]
        fn deterministic_execution() {
            let mut rng = Rng::seed_from_u64(0xc04e_0003);
            for _ in 0..48 {
                let p = random_program(&mut rng);
                let run = || {
                    let mut core = Core::new(CoreConfig::default(), &p);
                    let mut mem = FixedLatencyMemory { latency: 11 };
                    core.run_to_completion(&mut mem);
                    core.stats()
                };
                assert_eq!(run(), run());
            }
        }
    }

    /// Snapshot mid-run, restore into a fresh core, and drive both to
    /// completion: every statistic (including cycle counts) must match,
    /// i.e. resume(snapshot(S)) continues bit-identically.
    #[test]
    fn snapshot_mid_run_resumes_bit_identically() {
        let mut rng = cdp_types::rng::Rng::seed_from_u64(0xc04e_5a9e);
        for trial in 0..24 {
            let p: Program = (0..400)
                .map(|i| {
                    let pc = (i as u32) * 4;
                    match rng.gen_range_u8(0..5) {
                        0 => Uop::alu(pc),
                        1 => Uop::alu_dep(pc, 3, [Some(2), None], 2),
                        2 => Uop::load(pc, VirtAddr(0x1000 + i as u32 * 32), 5, Some(5)),
                        3 => Uop::store(pc, VirtAddr(0x9000 + i as u32 * 32), None, None),
                        _ => Uop::branch(pc, rng.gen_bool(0.5), None),
                    }
                })
                .collect();
            let stop = u64::from(rng.gen_range_u32(1..350));
            let mut mem_a = FixedLatencyMemory { latency: 9 };
            let mut a = Core::new(CoreConfig::default(), &p);
            a.run_until_retired(&mut mem_a, stop);

            let mut enc = cdp_snap::Enc::new();
            a.save_state(&mut enc);
            let bytes = enc.into_bytes();
            let mut b = Core::new(CoreConfig::default(), &p);
            let mut dec = cdp_snap::Dec::new(&bytes);
            b.restore_state(&mut dec).unwrap();
            assert!(dec.is_exhausted(), "trial {trial}: trailing bytes");
            assert_eq!(a.now(), b.now());

            let mut mem_b = FixedLatencyMemory { latency: 9 };
            a.run_to_completion(&mut mem_a);
            b.run_to_completion(&mut mem_b);
            assert_eq!(a.stats(), b.stats(), "trial {trial} diverged");
            assert_eq!(a.now(), b.now(), "trial {trial} cycle drift");
        }
    }

    #[test]
    fn run_until_retired_is_resumable() {
        let p: Program = (0..90).map(|i| Uop::alu(i * 4)).collect();
        let mut core = Core::new(CoreConfig::default(), &p);
        let mut mem = FixedLatencyMemory { latency: 3 };
        assert!(!core.run_until_retired(&mut mem, 30));
        let r1 = core.stats().retired;
        assert!((30..60).contains(&r1), "r1 {r1}");
        assert!(core.run_until_retired(&mut mem, 10_000));
        assert_eq!(core.stats().retired, 90);
    }

    /// Feeds a pre-built uop list in fixed-size chunks — the reference
    /// streaming source for differential tests.
    #[derive(Clone, Debug)]
    struct SliceSource {
        uops: Vec<Uop>,
        pos: usize,
        chunk: usize,
    }

    impl crate::feed::UopSource for SliceSource {
        fn fill(&mut self, out: &mut std::collections::VecDeque<Uop>) -> usize {
            let n = self.chunk.min(self.uops.len() - self.pos);
            out.extend(self.uops[self.pos..self.pos + n].iter().copied());
            self.pos += n;
            n
        }

        fn exhausted(&self) -> bool {
            self.pos >= self.uops.len()
        }

        fn box_clone(&self) -> Box<dyn crate::feed::UopSource> {
            Box::new(self.clone())
        }

        fn save_cursor(&self, enc: &mut cdp_snap::Enc) {
            enc.usize(self.pos);
        }

        fn restore_cursor(
            &mut self,
            dec: &mut cdp_snap::Dec<'_>,
        ) -> Result<(), cdp_types::SnapshotError> {
            self.pos = dec.usize("slice cursor")?;
            Ok(())
        }
    }

    fn mixed_program(n: u32, seed: u64) -> Program {
        let mut x = seed;
        let mut uops = Vec::new();
        for i in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pc = i * 4;
            uops.push(match x % 5 {
                0 => Uop::load(pc, VirtAddr(0x1000 + (x as u32 % 512) * 64), (i % 32) as u8 + 8, Some(1)),
                1 => Uop::store(pc, VirtAddr(0x9000 + (x as u32 % 64) * 4), None, Some(2)),
                2 => Uop::branch(pc, (x >> 63) == 1, None),
                3 => Uop::alu_dep(pc, 1, [Some(1), None], 2),
                _ => Uop::alu(pc),
            });
        }
        Program::new(uops)
    }

    /// A streaming core over the same uop sequence must trace the exact
    /// trajectory of the materialized core — every statistic and the
    /// final cycle count — while keeping only a bounded window resident.
    #[test]
    fn streaming_feed_matches_materialized() {
        for seed in [0x12345678u64, 0xdeadbeef, 7] {
            let p = mixed_program(5000, seed);
            let mut mem = FixedLatencyMemory { latency: 40 };
            let mut whole = Core::new(CoreConfig::default(), &p);
            whole.run_to_completion(&mut mem);

            let src = SliceSource {
                uops: p.uops.clone(),
                pos: 0,
                chunk: 64,
            };
            let mut mem2 = FixedLatencyMemory { latency: 40 };
            let mut stream = Core::new_streaming(CoreConfig::default(), Box::new(src));
            let cap = CoreConfig::default().rob_size + 2 * 64;
            while !stream.done() {
                stream.step(&mut mem2);
                if let Feed::Stream(s) = &stream.feed {
                    assert!(s.window.len() <= cap, "window {} > {cap}", s.window.len());
                }
            }
            assert_eq!(whole.stats(), stream.stats(), "seed {seed:#x}");
            assert_eq!(whole.now(), stream.now(), "seed {seed:#x}");
        }
    }

    /// Snapshot a streaming core mid-run and restore into a fresh
    /// streaming core over an un-advanced source: the cursor round-trip
    /// must continue bit-identically.
    #[test]
    fn streaming_snapshot_resumes_bit_identically() {
        let p = mixed_program(3000, 0xfeed_f00d);
        let make = || SliceSource {
            uops: p.uops.clone(),
            pos: 0,
            chunk: 128,
        };
        let mut mem_a = FixedLatencyMemory { latency: 17 };
        let mut a = Core::new_streaming(CoreConfig::default(), Box::new(make()));
        a.run_until_retired(&mut mem_a, 1200);

        let mut enc = cdp_snap::Enc::new();
        a.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut b = Core::new_streaming(CoreConfig::default(), Box::new(make()));
        let mut dec = cdp_snap::Dec::new(&bytes);
        b.restore_state(&mut dec).unwrap();
        assert!(dec.is_exhausted(), "trailing bytes");
        assert_eq!(a.now(), b.now());

        let mut mem_b = FixedLatencyMemory { latency: 17 };
        a.run_to_completion(&mut mem_a);
        b.run_to_completion(&mut mem_b);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.now(), b.now());
    }

    /// A whole-program snapshot must not restore into a streaming core
    /// (and vice versa) — mirroring the histogram-presence rule.
    #[test]
    fn feed_kind_mismatch_is_rejected() {
        let p = mixed_program(500, 3);
        let mut mem = FixedLatencyMemory { latency: 5 };
        let mut whole = Core::new(CoreConfig::default(), &p);
        whole.run_until_retired(&mut mem, 100);
        let mut enc = cdp_snap::Enc::new();
        whole.save_state(&mut enc);
        let bytes = enc.into_bytes();

        let src = SliceSource {
            uops: p.uops.clone(),
            pos: 0,
            chunk: 64,
        };
        let mut stream = Core::new_streaming(CoreConfig::default(), Box::new(src));
        let mut dec = cdp_snap::Dec::new(&bytes);
        assert!(stream.restore_state(&mut dec).is_err());
    }
}
