//! Cycle-level out-of-order core model.
//!
//! Reproduces the "Processor" block of the paper's Table 1: a 4-GHz,
//! 3-wide fetch/issue/retire machine with a 128-entry reorder buffer,
//! 48-entry load and 32-entry store queues, 3 integer / 2 memory / 1
//! floating-point units, a 16 K-entry gshare branch predictor, and a
//! 28-cycle misprediction penalty.
//!
//! The core executes **dependency-annotated uop traces** ([`Uop`]): each
//! uop names its source/destination registers, so true dataflow — in
//! particular the load-to-load serialization that makes pointer chasing
//! slow — is honored, while effective addresses are precomputed by the
//! workload generator against a real byte-level memory image (the
//! "LIT checkpoint" substitution described in `DESIGN.md`).
//!
//! Data accesses are delegated to a [`MemoryModel`], which the full-system
//! simulator implements with the complete cache/TLB/bus hierarchy.

#![warn(missing_docs)]

pub mod core;
pub mod feed;
pub mod gshare;
pub mod uop;

pub use crate::core::{Core, CoreStats};
pub use feed::UopSource;
pub use gshare::Gshare;
pub use uop::{Program, Uop, UopKind, NUM_REGS};

use cdp_types::{AccessKind, VirtAddr};

/// The core's window onto the memory system.
///
/// [`MemoryModel::access`] is called when a load or store *issues*; the
/// returned cycle is when its data is available (loads) or when its store
/// buffer entry drains (stores). Implementations model all cache, TLB,
/// bus, and prefetch behavior behind this call.
pub trait MemoryModel {
    /// Issues a data access at cycle `now`; returns its completion cycle
    /// (`>= now`).
    fn access(&mut self, pc: u32, vaddr: VirtAddr, kind: AccessKind, now: u64) -> u64;
}

/// A fixed-latency memory for unit tests and core-only studies.
#[derive(Clone, Copy, Debug)]
pub struct FixedLatencyMemory {
    /// Cycles from issue to data for every access.
    pub latency: u64,
}

impl MemoryModel for FixedLatencyMemory {
    fn access(&mut self, _pc: u32, _vaddr: VirtAddr, _kind: AccessKind, now: u64) -> u64 {
        now + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_memory() {
        let mut m = FixedLatencyMemory { latency: 3 };
        assert_eq!(m.access(0, VirtAddr(0), AccessKind::Load, 10), 13);
    }
}
