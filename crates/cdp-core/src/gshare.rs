//! A gshare branch predictor (Table 1: 16 K-entry).
//!
//! Global history XORed with the branch PC indexes a table of 2-bit
//! saturating counters. The simulator consults the predictor at fetch and
//! charges the 28-cycle redirect penalty when the prediction disagrees
//! with the trace's recorded outcome.

/// The gshare predictor.
///
/// # Examples
///
/// ```
/// use cdp_core::Gshare;
///
/// let mut bp = Gshare::new(14); // 16K entries
/// // An always-taken branch becomes predictable once the global history
/// // register saturates (14 shifts) and the pinned counter trains.
/// let pc = 0x400;
/// for _ in 0..40 {
///     let pred = bp.predict(pc);
///     bp.update(pc, pred, true);
/// }
/// assert!(bp.predict(pc));
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u32,
    mask: u32,
}

impl Gshare {
    /// Creates a predictor with `2^log2_entries` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is 0 or greater than 24.
    pub fn new(log2_entries: u32) -> Self {
        assert!(
            (1..=24).contains(&log2_entries),
            "gshare size out of range: {log2_entries}"
        );
        Gshare {
            counters: vec![1; 1 << log2_entries], // weakly not-taken
            history: 0,
            mask: (1 << log2_entries) - 1,
        }
    }

    /// Table entries.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    #[inline]
    fn index(&self, pc: u32) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc` with the current
    /// global history.
    #[inline]
    pub fn predict(&self, pc: u32) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Updates the counter for `pc` with the actual `outcome` and shifts
    /// the global history. `predicted` is accepted for symmetry with
    /// hardware interfaces that repair history on mispredicts; this model
    /// updates history with the actual outcome (trace-driven fetch always
    /// resumes on the correct path).
    #[inline]
    pub fn update(&mut self, pc: u32, _predicted: bool, outcome: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if outcome {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | outcome as u32) & self.mask;
    }

    /// Serializes the predictor state (history register + counter table).
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u32(self.history);
        enc.bytes(&self.counters);
    }

    /// Restores state written by [`Gshare::save_state`] into a predictor
    /// of the same geometry.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation, a
    /// counter-table size mismatch, or a counter value outside 0..=3.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        let history = dec.u32("gshare history")?;
        let counters = dec.bytes("gshare counters")?;
        if counters.len() != self.counters.len() {
            return Err(cdp_types::SnapshotError::Corrupt {
                context: "gshare table size",
            });
        }
        if counters.iter().any(|&c| c > 3) {
            return Err(cdp_types::SnapshotError::Corrupt {
                context: "gshare counter value",
            });
        }
        self.history = history & self.mask;
        self.counters.copy_from_slice(counters);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut bp = Gshare::new(10);
        let mut wrong = 0;
        for _ in 0..100 {
            let p = bp.predict(0x40);
            if !p {
                wrong += 1;
            }
            bp.update(0x40, p, true);
        }
        // The first ~10 updates churn the history register (each touching a
        // fresh counter); once history saturates the branch is perfect.
        assert!(wrong <= 15, "always-taken should be learned: {wrong}");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut bp = Gshare::new(12);
        let mut wrong = 0;
        for i in 0..200u32 {
            let outcome = i % 2 == 0;
            let p = bp.predict(0x80);
            if p != outcome {
                wrong += 1;
            }
            bp.update(0x80, p, outcome);
        }
        // After warm-up the alternation is captured by history bits.
        assert!(wrong < 30, "alternating pattern should train: {wrong}");
    }

    #[test]
    fn random_branches_mispredict_often() {
        // A PRNG-driven branch cannot be predicted: expect ~50% error.
        let mut bp = Gshare::new(14);
        let mut x = 0x12345678u64;
        let mut wrong = 0;
        let n = 2000;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let outcome = (x >> 63) == 1;
            let p = bp.predict(0x100);
            if p != outcome {
                wrong += 1;
            }
            bp.update(0x100, p, outcome);
        }
        let rate = wrong as f64 / n as f64;
        assert!(
            (0.3..0.7).contains(&rate),
            "random branch misprediction rate ~50%, got {rate}"
        );
    }

    #[test]
    fn stable_history_pins_the_counter() {
        let mut bp = Gshare::new(14);
        // 40 updates: history saturates to all-ones after 14, then the
        // same counter trains to strongly-taken.
        for _ in 0..40 {
            let p = bp.predict(0x40);
            bp.update(0x40, p, true);
        }
        assert!(bp.predict(0x40));
    }

    #[test]
    #[should_panic(expected = "gshare size out of range")]
    fn zero_size_panics() {
        let _ = Gshare::new(0);
    }
}
