//! The uop trace ISA.
//!
//! Workload generators emit sequences of [`Uop`]s with explicit register
//! dependences. The register file is an abstraction: values are never
//! computed (addresses were resolved at generation time against the real
//! memory image), but *readiness* is tracked cycle-accurately, so
//! dependence chains — especially loads feeding the addresses of later
//! loads — serialize exactly as they would in hardware.

use cdp_types::VirtAddr;

/// Number of architectural registers available to trace generators.
pub const NUM_REGS: usize = 64;

/// The operation performed by one uop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UopKind {
    /// Integer ALU operation completing after `latency` cycles.
    Alu {
        /// Execution latency in cycles (>= 1).
        latency: u8,
    },
    /// Floating-point operation (uses the FP unit).
    Fp {
        /// Execution latency in cycles (>= 1).
        latency: u8,
    },
    /// Data load from `vaddr` (uses a memory unit and a load-queue entry).
    Load {
        /// Effective address, resolved at trace-generation time.
        vaddr: VirtAddr,
    },
    /// Data store to `vaddr` (uses a memory unit and a store-queue entry).
    Store {
        /// Effective address, resolved at trace-generation time.
        vaddr: VirtAddr,
    },
    /// Conditional branch with its actual outcome; mispredictions cost the
    /// configured redirect penalty.
    Branch {
        /// The branch's resolved direction.
        taken: bool,
    },
}

/// One micro-operation with its register dependences.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Uop {
    /// Program counter (used by the stride prefetcher and gshare).
    pub pc: u32,
    /// The operation.
    pub kind: UopKind,
    /// Destination register, if any.
    pub dst: Option<u8>,
    /// Up to two source registers.
    pub srcs: [Option<u8>; 2],
}

impl Uop {
    /// A dependency-free single-cycle ALU uop (filler work).
    pub fn alu(pc: u32) -> Self {
        Uop {
            pc,
            kind: UopKind::Alu { latency: 1 },
            dst: None,
            srcs: [None, None],
        }
    }

    /// An ALU uop computing `dst` from `srcs` in `latency` cycles.
    pub fn alu_dep(pc: u32, dst: u8, srcs: [Option<u8>; 2], latency: u8) -> Self {
        Uop {
            pc,
            kind: UopKind::Alu {
                latency: latency.max(1),
            },
            dst: Some(dst),
            srcs,
        }
    }

    /// A load into `dst` whose address depends on `addr_reg` (None for an
    /// address available immediately, e.g. a global).
    pub fn load(pc: u32, vaddr: VirtAddr, dst: u8, addr_reg: Option<u8>) -> Self {
        Uop {
            pc,
            kind: UopKind::Load { vaddr },
            dst: Some(dst),
            srcs: [addr_reg, None],
        }
    }

    /// A store of `data_reg` to `vaddr` through `addr_reg`.
    pub fn store(pc: u32, vaddr: VirtAddr, addr_reg: Option<u8>, data_reg: Option<u8>) -> Self {
        Uop {
            pc,
            kind: UopKind::Store { vaddr },
            dst: None,
            srcs: [addr_reg, data_reg],
        }
    }

    /// A conditional branch on `cond_reg` with outcome `taken`.
    pub fn branch(pc: u32, taken: bool, cond_reg: Option<u8>) -> Self {
        Uop {
            pc,
            kind: UopKind::Branch { taken },
            dst: None,
            srcs: [cond_reg, None],
        }
    }

    /// Whether this uop needs a memory port.
    pub fn is_mem(&self) -> bool {
        matches!(self.kind, UopKind::Load { .. } | UopKind::Store { .. })
    }

    /// The effective address, if this is a memory uop.
    pub fn vaddr(&self) -> Option<VirtAddr> {
        match self.kind {
            UopKind::Load { vaddr } | UopKind::Store { vaddr } => Some(vaddr),
            _ => None,
        }
    }
}

/// An executable uop trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// The uops, in program order.
    pub uops: Vec<Uop>,
}

impl Program {
    /// Creates a program from uops.
    pub fn new(uops: Vec<Uop>) -> Self {
        Program { uops }
    }

    /// Number of uops.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Count of load uops.
    pub fn num_loads(&self) -> usize {
        self.uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Load { .. }))
            .count()
    }

    /// Count of store uops.
    pub fn num_stores(&self) -> usize {
        self.uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Store { .. }))
            .count()
    }

    /// Count of branch uops.
    pub fn num_branches(&self) -> usize {
        self.uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Branch { .. }))
            .count()
    }
}

impl std::fmt::Display for UopKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UopKind::Alu { latency } => write!(f, "alu({latency})"),
            UopKind::Fp { latency } => write!(f, "fp({latency})"),
            UopKind::Load { vaddr } => write!(f, "ld [{vaddr}]"),
            UopKind::Store { vaddr } => write!(f, "st [{vaddr}]"),
            UopKind::Branch { taken } => {
                write!(f, "br {}", if *taken { "taken" } else { "not-taken" })
            }
        }
    }
}

impl std::fmt::Display for Uop {
    /// A disassembly-style line: `pc: kind dst <- srcs`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#06x}: {}", self.pc, self.kind)?;
        if let Some(d) = self.dst {
            write!(f, " r{d} <-")?;
        }
        for s in self.srcs.iter().flatten() {
            write!(f, " r{s}")?;
        }
        Ok(())
    }
}

impl Program {
    /// Renders a disassembly-style listing of `range` (clamped to the
    /// program), one uop per line — a debugging aid for trace generators.
    pub fn disasm(&self, range: std::ops::Range<usize>) -> String {
        let end = range.end.min(self.uops.len());
        let start = range.start.min(end);
        let mut out = String::new();
        for (i, u) in self.uops[start..end].iter().enumerate() {
            out.push_str(&format!("{:>6}  {}\n", start + i, u));
        }
        out
    }
}

impl FromIterator<Uop> for Program {
    fn from_iter<I: IntoIterator<Item = Uop>>(iter: I) -> Self {
        Program {
            uops: iter.into_iter().collect(),
        }
    }
}

impl Extend<Uop> for Program {
    fn extend<I: IntoIterator<Item = Uop>>(&mut self, iter: I) {
        self.uops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_dependences() {
        let ld = Uop::load(0x10, VirtAddr(0x1000), 3, Some(2));
        assert_eq!(ld.dst, Some(3));
        assert_eq!(ld.srcs, [Some(2), None]);
        assert!(ld.is_mem());
        assert_eq!(ld.vaddr(), Some(VirtAddr(0x1000)));

        let st = Uop::store(0x14, VirtAddr(0x2000), Some(3), Some(4));
        assert!(st.is_mem());
        assert_eq!(st.dst, None);

        let br = Uop::branch(0x18, true, Some(1));
        assert!(!br.is_mem());
        assert_eq!(br.vaddr(), None);
    }

    #[test]
    fn alu_latency_floor() {
        let u = Uop::alu_dep(0, 1, [None, None], 0);
        assert_eq!(u.kind, UopKind::Alu { latency: 1 });
    }

    #[test]
    fn display_and_disasm() {
        let u = Uop::load(0x10, VirtAddr(0x1000), 3, Some(2));
        assert_eq!(u.to_string(), "0x0010: ld [0x00001000] r3 <- r2");
        let b = Uop::branch(0x18, true, Some(1));
        assert!(b.to_string().contains("br taken"));
        let p = Program::new(vec![u, b]);
        let d = p.disasm(0..10);
        assert_eq!(d.lines().count(), 2);
        assert!(d.contains("ld ["));
        // Degenerate ranges are clamped, not panicking.
        #[allow(clippy::reversed_empty_ranges)]
        let degenerate = 5..3;
        assert_eq!(p.disasm(degenerate), "");
    }

    #[test]
    fn program_counts() {
        let p: Program = vec![
            Uop::alu(0),
            Uop::load(4, VirtAddr(0x1000), 1, None),
            Uop::store(8, VirtAddr(0x2000), None, Some(1)),
            Uop::branch(12, false, None),
            Uop::load(16, VirtAddr(0x3000), 2, Some(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(p.len(), 5);
        assert_eq!(p.num_loads(), 2);
        assert_eq!(p.num_stores(), 1);
        assert_eq!(p.num_branches(), 1);
        assert!(!p.is_empty());
    }
}
