#!/usr/bin/env bash
# Pinned observability sweep: runs a fixed experiment set with metrics
# windowing and manifest emission, validates the artifacts, and snapshots
# the manifest as bench/BENCH_<utc-stamp>.json so a machine-readable
# performance trajectory accumulates across commits without cluttering
# the repo root.
#
# The sweep is repeated SAMPLES times (after one discarded warm-up run)
# and the per-run wall times are folded into `suite_wall_stats`
# ({mean_ms, median_ms, ci95_lo, ci95_hi, samples, rejected} — MAD
# outlier rejection, Student's-t 95% interval) by `bench-stats`,
# upgrading the snapshot to BENCH schema v2. The header still carries
# the point numbers the v1 trajectory tracked: `suite_wall_ms` (from the
# last run), `result_cache_hits`/`result_cache_misses`, and
# `aggregates.cells_total`.
#
# Usage: bench.sh [--micro]
#   --micro  also run the std-only `microbench` kernels (cache access,
#            line read, VAM scan, MSHR insert/drain, snapshot encode,
#            result-cache contention) with the same SAMPLES count and
#            merge their numbers into the snapshot under a top-level
#            `micro` key (per-kernel `_stats` objects when SAMPLES > 1).
#
# Knobs (environment variables):
#   SCALE    smoke|quick|full|large|huge  run size (default: smoke)
#   JOBS     N                 worker threads      (default: 2)
#   SAMPLES  N                 timed sweep repeats (default: 5)
#   OUT      dir               scratch artifact dir (default: bench/scratch,
#                              gitignored)
#   EXTRA    flags             extra experiment flags, e.g. --no-fast-forward
set -euo pipefail
cd "$(dirname "$0")/.."

MICRO=0
for arg in "$@"; do
    case "$arg" in
        --micro) MICRO=1 ;;
        *)
            echo "usage: bench.sh [--micro]" >&2
            exit 2
            ;;
    esac
done

SCALE="${SCALE:-smoke}"
JOBS="${JOBS:-2}"
SAMPLES="${SAMPLES:-5}"
OUT="${OUT:-bench/scratch}"
EXTRA="${EXTRA:-}"
mkdir -p bench
# The pinned sweep: one TLB-pressure grid and one depth/width/reinforce
# grid — together they exercise every prefetch engine and drop path.
IDS=(tlb fig9)

cargo build --release -p cdp-experiments -p cdp-obs -p cdp-bench

# shellcheck disable=SC2086  # EXTRA is intentionally word-split
run_sweep() {
    rm -rf "$OUT"
    ./target/release/experiments "${IDS[@]}" --scale "$SCALE" --jobs "$JOBS" \
        --metrics-window 65536 --emit-manifest "$OUT" $EXTRA > /dev/null
    grep -o '"suite_wall_ms":[0-9]*' "$OUT/manifest.json" | cut -d: -f2
}

# One discarded warm-up run (page cache, frequency governor), then the
# timed samples. Each run re-executes the full sweep; the result cache
# is per-process so later samples are not served from earlier ones.
run_sweep > /dev/null
walls=""
for _ in $(seq "$SAMPLES"); do
    w="$(run_sweep)"
    walls="${walls:+$walls,}$w"
done

./target/release/validate-manifest "$OUT/manifest.json" "$OUT/metrics.jsonl"

stamp="$(date -u +%Y%m%dT%H%M%SZ)"
snap="bench/BENCH_${stamp}.json"
cp "$OUT/manifest.json" "$snap"
./target/release/bench-stats --inject "$snap" --suite-wall-ms "$walls"
if [ "$MICRO" -eq 1 ]; then
    ./target/release/microbench --samples "$SAMPLES" \
        --inject "$snap" > /dev/null
fi
./target/release/validate-manifest --bench "$snap"

wall="$(grep -o '"suite_wall_ms":[0-9]*' "$snap" | cut -d: -f2)"
hits="$(grep -o '"result_cache_hits":[0-9]*' "$snap" | cut -d: -f2)"
cells="$(grep -o '"cells_total":[0-9]*' "$snap" | cut -d: -f2)"
echo "bench: wrote $snap (scale=$SCALE jobs=$JOBS samples=$SAMPLES ids=${IDS[*]})"
echo "bench: suite_wall_ms=$wall samples=[$walls] cells=$cells result_cache_hits=$hits micro=$MICRO"
