#!/usr/bin/env bash
# Pinned observability sweep: runs a fixed experiment set with metrics
# windowing and manifest emission, validates the artifacts, and snapshots
# the manifest as BENCH_<utc-stamp>.json in the repo root so a
# machine-readable performance trajectory accumulates across commits.
#
# The snapshot's header carries the suite-level numbers the trajectory
# tracks: `suite_wall_ms` (total wall time across the pinned ids),
# `result_cache_hits`/`result_cache_misses`, and
# `aggregates.cells_total`.
#
# Usage: bench.sh [--micro]
#   --micro  also run the std-only `microbench` kernels (cache access,
#            line read, VAM scan, MSHR insert/drain) and merge their
#            numbers into the snapshot under a top-level `micro` key.
#
# Knobs (environment variables):
#   SCALE  smoke|quick|full   run size           (default: smoke)
#   JOBS   N                  worker threads     (default: 2)
#   OUT    dir                artifact directory (default: target/bench-manifest)
set -euo pipefail
cd "$(dirname "$0")/.."

MICRO=0
for arg in "$@"; do
    case "$arg" in
        --micro) MICRO=1 ;;
        *)
            echo "usage: bench.sh [--micro]" >&2
            exit 2
            ;;
    esac
done

SCALE="${SCALE:-smoke}"
JOBS="${JOBS:-2}"
OUT="${OUT:-target/bench-manifest}"
# The pinned sweep: one TLB-pressure grid and one depth/width/reinforce
# grid — together they exercise every prefetch engine and drop path.
IDS=(tlb fig9)

cargo build --release -p cdp-experiments -p cdp-obs -p cdp-bench

rm -rf "$OUT"
./target/release/experiments "${IDS[@]}" "--${SCALE}" --jobs "$JOBS" \
    --metrics-window 65536 --emit-manifest "$OUT" > /dev/null

./target/release/validate-manifest "$OUT/manifest.json" "$OUT/metrics.jsonl"

stamp="$(date -u +%Y%m%dT%H%M%SZ)"
cp "$OUT/manifest.json" "BENCH_${stamp}.json"
if [ "$MICRO" -eq 1 ]; then
    ./target/release/microbench --inject "BENCH_${stamp}.json" > /dev/null
fi

wall="$(grep -o '"suite_wall_ms":[0-9]*' "BENCH_${stamp}.json" | cut -d: -f2)"
hits="$(grep -o '"result_cache_hits":[0-9]*' "BENCH_${stamp}.json" | cut -d: -f2)"
cells="$(grep -o '"cells_total":[0-9]*' "BENCH_${stamp}.json" | cut -d: -f2)"
echo "bench: wrote BENCH_${stamp}.json (scale=$SCALE jobs=$JOBS ids=${IDS[*]})"
echo "bench: suite_wall_ms=$wall cells=$cells result_cache_hits=$hits micro=$MICRO"
