#!/usr/bin/env bash
# Pinned observability sweep: runs a fixed experiment set with metrics
# windowing and manifest emission, validates the artifacts, and snapshots
# the manifest as BENCH_<utc-stamp>.json in the repo root so a
# machine-readable performance trajectory accumulates across commits.
#
# Knobs (environment variables):
#   SCALE  smoke|quick|full   run size           (default: smoke)
#   JOBS   N                  worker threads     (default: 2)
#   OUT    dir                artifact directory (default: target/bench-manifest)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${SCALE:-smoke}"
JOBS="${JOBS:-2}"
OUT="${OUT:-target/bench-manifest}"
# The pinned sweep: one TLB-pressure grid and one depth/width/reinforce
# grid — together they exercise every prefetch engine and drop path.
IDS=(tlb fig9)

cargo build --release -p cdp-experiments -p cdp-obs

rm -rf "$OUT"
./target/release/experiments "${IDS[@]}" "--${SCALE}" --jobs "$JOBS" \
    --metrics-window 65536 --emit-manifest "$OUT" > /dev/null

./target/release/validate-manifest "$OUT/manifest.json" "$OUT/metrics.jsonl"

stamp="$(date -u +%Y%m%dT%H%M%SZ)"
cp "$OUT/manifest.json" "BENCH_${stamp}.json"
echo "bench: wrote BENCH_${stamp}.json (scale=$SCALE jobs=$JOBS ids=${IDS[*]})"
