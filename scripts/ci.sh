#!/usr/bin/env bash
# Tier-1 gate: offline build, full test suite, lint, and a smoke pass of
# every experiment through the parallel engine — both fault-free and
# under injected faults. No network access required — the workspace
# (including the std-only cdp-bench microbenchmarks) has zero registry
# dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test -q --release --workspace

echo "== experiments all --smoke --jobs 2 =="
./target/release/experiments all --smoke --jobs 2 > /dev/null

echo "== observability smoke (byte-identity + manifest validation) =="
# The default path must be byte-identical with all observability flags
# off vs. on (and at different --jobs counts), and the emitted manifest
# must parse and carry the required schema keys.
rm -rf /tmp/cdp-obs-ci
./target/release/experiments tlb --smoke --jobs 2 > /tmp/cdp-obs-ci-plain.out
./target/release/experiments tlb --smoke --jobs 1 --trace --metrics-window 16384 \
    --emit-manifest /tmp/cdp-obs-ci > /tmp/cdp-obs-ci-obs.out 2> /dev/null
cmp /tmp/cdp-obs-ci-plain.out /tmp/cdp-obs-ci-obs.out || {
    echo "observability smoke: stdout differs with tracing enabled" >&2
    exit 1
}
./target/release/validate-manifest /tmp/cdp-obs-ci/manifest.json \
    /tmp/cdp-obs-ci/metrics.jsonl /tmp/cdp-obs-ci/trace.jsonl

echo "== profile/status smoke (byte-identity + run-explain self-diff) =="
# Latency histograms and the live status stream (DESIGN.md §15) must be
# behavior-neutral: stdout with --profile-hist + --status-jsonl on must
# be byte-identical to the plain run at --jobs 1 and 4, the status
# sidecars must actually stream events, the profile-bearing manifests
# must validate, and run-explain on the two same-config runs must
# report zero divergence (exit 0).
rm -rf /tmp/cdp-prof-ci-1 /tmp/cdp-prof-ci-4
./target/release/experiments tlb table2 --smoke --jobs 2 > /tmp/cdp-prof-plain.out
for jobs in 1 4; do
    ./target/release/experiments tlb table2 --smoke --jobs "$jobs" \
        --profile-hist --metrics-window 16384 \
        --status-jsonl "/tmp/cdp-prof-status-$jobs.jsonl" \
        --emit-manifest "/tmp/cdp-prof-ci-$jobs" \
        > "/tmp/cdp-prof-obs-$jobs.out" 2> /dev/null
    cmp /tmp/cdp-prof-plain.out "/tmp/cdp-prof-obs-$jobs.out" || {
        echo "profile smoke: stdout differs with histograms/status at --jobs $jobs" >&2
        exit 1
    }
    test -s "/tmp/cdp-prof-status-$jobs.jsonl" || {
        echo "profile smoke: status stream empty at --jobs $jobs" >&2
        exit 1
    }
    grep -q '"event":"done"' "/tmp/cdp-prof-status-$jobs.jsonl" || {
        echo "profile smoke: status stream missing done events at --jobs $jobs" >&2
        exit 1
    }
    ./target/release/validate-manifest "/tmp/cdp-prof-ci-$jobs/manifest.json" \
        "/tmp/cdp-prof-ci-$jobs/metrics.jsonl"
done
./target/release/run-explain /tmp/cdp-prof-ci-1 /tmp/cdp-prof-ci-4 > /dev/null || {
    echo "profile smoke: run-explain found divergence between same-config runs" >&2
    exit 1
}

echo "== result-cache smoke (byte-identity cache on vs off) =="
# The fingerprint-keyed result cache must never change rendered output:
# the same ids at different --jobs counts, cache on vs --no-result-cache,
# must produce byte-identical stdout.
./target/release/experiments tlb table2 --smoke --jobs 2 > /tmp/cdp-rc-on.out
./target/release/experiments tlb table2 --smoke --jobs 4 --no-result-cache \
    > /tmp/cdp-rc-off.out
cmp /tmp/cdp-rc-on.out /tmp/cdp-rc-off.out || {
    echo "result-cache smoke: stdout differs between cache on and off" >&2
    exit 1
}

echo "== fast-forward smoke (byte-identity fast path vs reference schedule) =="
# Idle-cycle fast-forwarding must be behavior-neutral: the event-driven
# fast path and the cycle-by-cycle reference schedule forced by
# --no-fast-forward must render byte-identical stdout (DESIGN.md §13).
./target/release/experiments tlb fig2 --smoke --jobs 2 > /tmp/cdp-ff-on.out
./target/release/experiments tlb fig2 --smoke --jobs 2 --no-fast-forward \
    > /tmp/cdp-ff-off.out
cmp /tmp/cdp-ff-on.out /tmp/cdp-ff-off.out || {
    echo "fast-forward smoke: stdout differs with --no-fast-forward" >&2
    exit 1
}

echo "== bench smoke (statistical harness + self-comparison) =="
# A short bench.sh run must produce a schema-v2 snapshot that validates,
# and bench-compare of a snapshot against itself must classify every
# tracked metric as unchanged (exit 0) — the CI-overlap classifier can
# never call identical confidence intervals a regression.
SAMPLES=3 OUT=/tmp/cdp-bench-ci ./scripts/bench.sh --micro > /dev/null 2>&1
bench_snap=$(ls -t bench/BENCH_*.json | head -1)
./target/release/bench-compare "$bench_snap" "$bench_snap" > /dev/null || {
    echo "bench smoke: self-comparison of $bench_snap not clean" >&2
    exit 1
}
rm -f "$bench_snap"

echo "== streaming smoke (byte-identity + capped large tier) =="
# The streaming engine must be behavior-neutral: forcing it everywhere
# with --stream renders byte-identical stdout at any --jobs count. Then
# one capped large-tier cell (~100M uops, one benchmark) must complete
# with the streaming engine and record uop-throughput accounting
# (`muops`) in its manifest — the tier is only reachable streamed, so
# completion alone proves the O(window) path end to end.
./target/release/experiments tlb --smoke --jobs 2 > /tmp/cdp-stream-plain.out
for jobs in 1 4; do
    ./target/release/experiments tlb --smoke --stream --jobs "$jobs" \
        > /tmp/cdp-stream-on.out
    cmp /tmp/cdp-stream-plain.out /tmp/cdp-stream-on.out || {
        echo "streaming smoke: stdout differs with --stream at --jobs $jobs" >&2
        exit 1
    }
done
rm -rf /tmp/cdp-stream-large
./target/release/experiments onecell --scale large --jobs 1 \
    --emit-manifest /tmp/cdp-stream-large > /dev/null 2> /dev/null
./target/release/validate-manifest /tmp/cdp-stream-large/manifest.json
grep -q '"muops":' /tmp/cdp-stream-large/manifest.json || {
    echo "streaming smoke: large-tier manifest missing muops accounting" >&2
    exit 1
}

echo "== checkpoint smoke (kill mid-flight, resume, byte-identity) =="
# Snapshot/resume (DESIGN.md §12): a sweep killed mid-flight and resumed
# from its checkpoints must produce byte-identical stdout to an
# uninterrupted run, at any --jobs count. A tight --checkpoint-every
# forces many snapshot writes; SIGKILL guarantees no graceful teardown.
rm -rf /tmp/cdp-ckpt-ci
mkdir -p /tmp/cdp-ckpt-ci
./target/release/experiments tlb table2 --smoke --jobs 2 > /tmp/cdp-ckpt-ref.out
for jobs in 1 4; do
    rm -f /tmp/cdp-ckpt-ci/*.snap /tmp/cdp-ckpt-ci/*.part
    ./target/release/experiments tlb table2 --smoke --jobs "$jobs" \
        --checkpoint-dir /tmp/cdp-ckpt-ci --checkpoint-every 50000 \
        > /tmp/cdp-ckpt-killed.out 2> /dev/null &
    pid=$!
    sleep 2
    kill -9 "$pid" 2> /dev/null || true
    wait "$pid" 2> /dev/null || true
    ./target/release/experiments tlb table2 --smoke --jobs "$jobs" \
        --checkpoint-dir /tmp/cdp-ckpt-ci --checkpoint-every 50000 --resume \
        > /tmp/cdp-ckpt-resumed.out
    cmp /tmp/cdp-ckpt-ref.out /tmp/cdp-ckpt-resumed.out || {
        echo "checkpoint smoke: resumed stdout differs at --jobs $jobs" >&2
        exit 1
    }
done
# Completed cells delete their checkpoints: the dir must be empty.
leftover=$(find /tmp/cdp-ckpt-ci -name '*.snap' | wc -l)
if [ "$leftover" -ne 0 ]; then
    echo "checkpoint smoke: $leftover checkpoint(s) left after completion" >&2
    exit 1
fi

echo "== fault-injection smoke (expect partial-failure exit 3) =="
# Unmap two trace pages of slsb: its cells must gap out, every other
# cell must complete, and the run must exit with the documented
# partial-failure code.
set +e
./target/release/experiments table2 --smoke --jobs 2 --keep-going \
    --fault unmap:slsb:7:2 > /dev/null 2> /tmp/cdp-fault-smoke.err
code=$?
set -e
if [ "$code" -ne 3 ]; then
    echo "fault smoke: expected exit 3 (partial failure), got $code" >&2
    cat /tmp/cdp-fault-smoke.err >&2
    exit 1
fi
grep -q "FAILURE REPORT" /tmp/cdp-fault-smoke.err || {
    echo "fault smoke: missing failure report on stderr" >&2
    exit 1
}

echo "== store chaos smoke (SIGKILL mid-sweep, fsck, warm replay, zero misses) =="
# Persistent result store (DESIGN.md §14): repeatedly SIGKILL a
# store-enabled sweep mid-flight — the store must stay consistent
# through every crash (store-fsck repairs and then scans clean), a cold
# completion run must be byte-identical to a store-less reference, and a
# warm cross-process re-run must replay every cell from disk (manifest
# records zero store misses) with byte-identical stdout.
rm -rf /tmp/cdp-store-ci /tmp/cdp-store-ci-manifest
mkdir -p /tmp/cdp-store-ci
./target/release/experiments tlb table2 --smoke --jobs 2 --no-result-cache \
    > /tmp/cdp-store-ref.out
for i in 1 2 3; do
    ./target/release/experiments tlb table2 --smoke --jobs 2 \
        --result-store /tmp/cdp-store-ci > /dev/null 2> /dev/null &
    pid=$!
    sleep 1
    kill -9 "$pid" 2> /dev/null || true
    wait "$pid" 2> /dev/null || true
    ./target/release/store-fsck /tmp/cdp-store-ci --repair > /dev/null || {
        echo "store smoke: fsck --repair failed after kill #$i" >&2
        exit 1
    }
done
./target/release/experiments tlb table2 --smoke --jobs 4 \
    --result-store /tmp/cdp-store-ci > /tmp/cdp-store-cold.out
cmp /tmp/cdp-store-ref.out /tmp/cdp-store-cold.out || {
    echo "store smoke: cold store-backed stdout differs from reference" >&2
    exit 1
}
./target/release/experiments tlb table2 --smoke --jobs 2 \
    --result-store /tmp/cdp-store-ci --emit-manifest /tmp/cdp-store-ci-manifest \
    > /tmp/cdp-store-warm.out 2> /dev/null
cmp /tmp/cdp-store-ref.out /tmp/cdp-store-warm.out || {
    echo "store smoke: warm store-backed stdout differs from reference" >&2
    exit 1
}
grep -q '"result_store_misses":0' /tmp/cdp-store-ci-manifest/manifest.json || {
    echo "store smoke: warm re-run did not replay every cell from disk" >&2
    exit 1
}
./target/release/store-fsck /tmp/cdp-store-ci > /dev/null || {
    echo "store smoke: store dirty after warm replay" >&2
    exit 1
}

echo "== tournament smoke (equal-silicon zoo, gating win, budget refusal) =="
# The prefetcher tournament must run every engine plus both perceptron
# hybrids at a matched table budget, render byte-identically at any
# --jobs count, emit a manifest (with the per-cell wasted-prefetch
# counters) that validates, show the perceptron gate actually cutting
# waste (hybrid wasted < bare CDP on at least one benchmark), and refuse
# a budget no engine geometry can realize (exit 2, before simulating).
rm -rf /tmp/cdp-tourney-ci
./target/release/experiments tournament --quick --jobs 2 --budget 8192 \
    --emit-manifest /tmp/cdp-tourney-ci > /tmp/cdp-tourney-2.out 2> /dev/null
./target/release/experiments tournament --quick --jobs 4 --budget 8192 \
    > /tmp/cdp-tourney-4.out
cmp /tmp/cdp-tourney-2.out /tmp/cdp-tourney-4.out || {
    echo "tournament smoke: stdout differs between --jobs 2 and --jobs 4" >&2
    exit 1
}
for engine in markov delta jump cdp 'cdp+perceptron' 'stride+perceptron'; do
    grep -q "^$engine " /tmp/cdp-tourney-2.out || {
        echo "tournament smoke: engine $engine missing from the grid" >&2
        exit 1
    }
done
./target/release/validate-manifest /tmp/cdp-tourney-ci/manifest.json
grep -q '"pf_wasted":' /tmp/cdp-tourney-ci/manifest.json || {
    echo "tournament smoke: manifest missing wasted-prefetch counters" >&2
    exit 1
}
grep -Eq 'gating check: cdp\+perceptron wasted < cdp on [1-9][0-9]*/' \
    /tmp/cdp-tourney-2.out || {
    echo "tournament smoke: perceptron gate never beat bare CDP on waste" >&2
    exit 1
}
set +e
./target/release/experiments tournament --smoke --budget 64 > /dev/null 2> /dev/null
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "tournament smoke: expected exit 2 for un-normalizable budget, got $code" >&2
    exit 1
fi

echo "ci: OK"
