#!/usr/bin/env bash
# Tier-1 gate: offline build, full test suite, and a smoke pass of every
# experiment through the parallel engine. No network access required —
# the workspace has zero registry dependencies (criterion lives in the
# excluded cdp-bench crate).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --release --workspace

echo "== experiments all --smoke --jobs 2 =="
./target/release/experiments all --smoke --jobs 2 > /dev/null

echo "ci: OK"
