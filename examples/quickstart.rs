//! Quickstart: run one pointer-intensive workload on the stride baseline
//! and on the content-prefetcher-enhanced system, and print the speedup.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cdp::sim::{speedup, RunLength, Simulator};
use cdp::types::SystemConfig;
use cdp::workloads::suite::Benchmark;

fn main() {
    // 1. Build a workload: a synthetic stand-in for the paper's
    //    specjbb-vsnet trace — linked lists, a tree, and a hash table
    //    written byte-for-byte into a simulated address space, plus a
    //    dependency-annotated uop trace that traverses them.
    let scale = RunLength::Quick.scale();
    let workload = Benchmark::SpecjbbVsnet.build(scale, 42);
    println!(
        "workload: {} ({} uops, {} pages mapped)",
        workload.name,
        workload.program.len(),
        workload.space.mapped_pages()
    );

    // 2. The baseline: the paper's Table 1 machine with its stride
    //    prefetcher (every speedup in the paper is measured against this).
    let mut base_cfg = SystemConfig::asplos2002();
    base_cfg.warmup_uops = (scale.target_uops / 6) as u64;
    let base = Simulator::new(base_cfg.clone()).run(&workload);
    println!(
        "baseline : {:>12} cycles  ipc {:.3}  L2 MPTU {:.2}",
        base.cycles,
        base.ipc(),
        base.mptu()
    );

    // 3. The same machine plus the content-directed data prefetcher in its
    //    tuned configuration (8.4.1.2 VAM, depth 3, reinforcement, p0.n3).
    let mut cdp_cfg = SystemConfig::with_content();
    cdp_cfg.warmup_uops = base_cfg.warmup_uops;
    let cdp = Simulator::new(cdp_cfg).run(&workload);
    println!(
        "with CDP : {:>12} cycles  ipc {:.3}  L2 MPTU {:.2}",
        cdp.cycles,
        cdp.ipc(),
        cdp.mptu()
    );

    // 4. Outcome.
    let s = speedup(&base, &cdp);
    println!("\nspeedup: {s:.3} ({:+.1}%)", (s - 1.0) * 100.0);
    println!(
        "content prefetches issued {}, useful {} (accuracy {:.0}%)",
        cdp.mem.content.issued,
        cdp.mem.content.useful(),
        cdp.mem.content.accuracy() * 100.0
    );
    let f = cdp.mem.distribution.fractions();
    println!(
        "UL2 demand classification: stride-full {:.0}%  stride-part {:.0}%  cpf-full {:.0}%  cpf-part {:.0}%  miss {:.0}%",
        f[0] * 100.0, f[1] * 100.0, f[2] * 100.0, f[3] * 100.0, f[4] * 100.0
    );
}
