//! Building your own workload: a random-graph walker assembled from the
//! public API — heap, graph builder, trace builder — then run under four
//! memory-system configurations, including the adaptive controller
//! (the paper's §4.1 future work).
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use cdp::core::Program;
use cdp::mem::AddressSpace;
use cdp::sim::{speedup, Simulator};
use cdp::types::{AdaptiveConfig, StreamConfig, SystemConfig};
use cdp::types::rng::Rng;
use cdp::workloads::structures::build_graph;
use cdp::workloads::suite::{Suite, Workload};
use cdp::workloads::{Heap, TraceBuilder};

fn main() {
    // 1. A 60k-node random graph (~2.5 MB of nodes + adjacency arrays).
    let mut space = AddressSpace::new();
    let mut heap = Heap::new(Heap::DEFAULT_BASE, 1 << 26).with_padding(8);
    let mut rng = Rng::seed_from_u64(2002);
    let graph = build_graph(&mut space, &mut heap, &mut rng, 60_000, 4, 32);

    // 2. A trace of random walks: 600 walks x 120 hops, with hot restarts.
    let mut tb = TraceBuilder::new();
    for _ in 0..600 {
        let start = if rng.gen_bool(0.7) {
            rng.gen_range_u32(0..4_000) // hot community
        } else {
            rng.gen_range_u32(0..graph.nodes.len() as u32)
        };
        tb.graph_walk(3, &graph, start, 120, 6, &mut rng);
        tb.alu_burst(4, 64);
    }
    let program: Program = tb.build();
    let workload = Workload {
        name: "graph-walk(60k nodes, degree 4)".into(),
        suite: Suite::Workstation,
        program,
        space,
        // A hand-built trace is materialized up front; only the suite's
        // large/huge tiers synthesize uops through a streaming source.
        stream: None,
    };
    println!(
        "workload: {} ({} uops, {} loads)\n",
        workload.name,
        workload.program.len(),
        workload.program.num_loads()
    );

    // 3. Four memory systems.
    let base = Simulator::new(SystemConfig::asplos2002()).run(&workload);
    println!(
        "{:32} {:>10} cycles  (MPTU {:>5.1})",
        "stride baseline",
        base.cycles,
        base.mptu()
    );

    let mut stream_cfg = SystemConfig::asplos2002();
    stream_cfg.prefetchers.stream = Some(StreamConfig::default());
    let streams = Simulator::new(stream_cfg).run(&workload);
    println!(
        "{:32} {:>10} cycles  speedup {:.3}",
        "+ stream buffers",
        streams.cycles,
        speedup(&base, &streams)
    );

    let content = Simulator::new(SystemConfig::with_content()).run(&workload);
    println!(
        "{:32} {:>10} cycles  speedup {:.3}",
        "+ content prefetcher",
        content.cycles,
        speedup(&base, &content)
    );

    let mut adaptive_cfg = SystemConfig::with_content();
    adaptive_cfg.prefetchers.adaptive = Some(AdaptiveConfig::default());
    let adaptive = Simulator::new(adaptive_cfg).run(&workload);
    let steering = adaptive
        .adaptive
        .map(|(st, c)| {
            format!(
                "steered to N={} n={} after {} windows",
                c.vam.compare_bits, c.next_lines, st.windows
            )
        })
        .unwrap_or_default();
    println!(
        "{:32} {:>10} cycles  speedup {:.3}  ({steering})",
        "+ content, adaptive knobs",
        adaptive.cycles,
        speedup(&base, &adaptive)
    );

    println!(
        "\ncontent prefetcher: {} issued, {} useful ({} full / {} partial)",
        content.mem.content.issued,
        content.mem.content.useful(),
        content.mem.content.useful_full,
        content.mem.content.useful_partial
    );
}
