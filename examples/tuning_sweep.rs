//! Heuristic tuning in miniature: sweep the virtual-address-matching
//! knobs (compare bits and next-line width) on one pointer workload and
//! print the coverage / accuracy / speedup trade-offs — the method behind
//! the paper's Figures 7–9.
//!
//! ```text
//! cargo run --release --example tuning_sweep
//! ```

use cdp::sim::{accuracy, coverage, speedup, Engine, RunLength, Simulator};
use cdp::types::{ContentConfig, SystemConfig, VamConfig};
use cdp::workloads::suite::Benchmark;

fn main() {
    let scale = RunLength::Quick.scale();
    let workload = Benchmark::Tpcc2.build(scale, 0x5eed_2002);
    let warmup = (scale.target_uops / 6) as u64;

    let mut base_cfg = SystemConfig::asplos2002();
    base_cfg.warmup_uops = warmup;
    let base = Simulator::new(base_cfg).run(&workload);
    println!(
        "baseline on {}: {} cycles, MPTU {:.2}\n",
        workload.name,
        base.cycles,
        base.mptu()
    );

    println!("compare-bit sweep (filter 4, align 1, step 2, width n3):");
    println!("  N    coverage  accuracy  speedup");
    for n in [8u32, 10, 12, 14] {
        let mut cfg = SystemConfig::with_content();
        cfg.warmup_uops = warmup;
        if let Some(c) = cfg.prefetchers.content.as_mut() {
            c.vam = VamConfig {
                compare_bits: n,
                ..VamConfig::tuned()
            };
        }
        let r = Simulator::new(cfg).run(&workload);
        println!(
            "  {n:<3}  {:>7.1}%  {:>7.1}%  {:>7.3}",
            coverage(&r, &base, Engine::Content) * 100.0,
            accuracy(&r, Engine::Content).min(1.0) * 100.0,
            speedup(&base, &r)
        );
    }

    println!("\nnext-line width sweep (VAM 8.4.1.2, depth 3, reinforcement):");
    println!("  n    issued    accuracy  speedup");
    for n in 0..=4u32 {
        let mut cfg = SystemConfig::with_content();
        cfg.warmup_uops = warmup;
        cfg.prefetchers.content = Some(ContentConfig {
            next_lines: n,
            ..ContentConfig::tuned()
        });
        let r = Simulator::new(cfg).run(&workload);
        println!(
            "  {n}  {:>9}  {:>7.1}%  {:>7.3}",
            r.mem.content.issued,
            accuracy(&r, Engine::Content).min(1.0) * 100.0,
            speedup(&base, &r)
        );
    }
    println!("\n(the paper's tuned point: 8 compare bits, width n3, depth 3, reinforcement)");
}
