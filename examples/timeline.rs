//! Watching a run unfold: per-window statistics (the machinery behind the
//! paper's Figure 1 warm-up methodology), with and without the content
//! prefetcher.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use cdp::sim::{RunLength, Simulator};
use cdp::types::SystemConfig;
use cdp::workloads::suite::Benchmark;

fn main() {
    let workload = Benchmark::Tpcc3.build(RunLength::Quick.scale(), 17);
    println!("{}\n", workload.summary());

    let window = 50_000u64;
    let base = Simulator::new(SystemConfig::asplos2002()).run_timeline(&workload, window);
    let cdp = Simulator::new(SystemConfig::with_content()).run_timeline(&workload, window);

    println!(
        "{:>6}  {:>10} {:>8} {:>8}   {:>10} {:>8} {:>8}  {:>8}",
        "window", "base cyc", "MPTU", "IPC", "cdp cyc", "MPTU", "IPC", "issued"
    );
    for (b, c) in base.iter().zip(&cdp) {
        println!(
            "{:>6}  {:>10} {:>8.2} {:>8.3}   {:>10} {:>8.2} {:>8.3}  {:>8}",
            b.window,
            b.cycles,
            b.mptu(),
            b.ipc(),
            c.cycles,
            c.mptu(),
            c.ipc(),
            c.content_issued
        );
    }

    let base_total: u64 = base.iter().map(|s| s.cycles).sum();
    let cdp_total: u64 = cdp.iter().map(|s| s.cycles).sum();
    println!(
        "\ntotals: baseline {} cycles, with CDP {} cycles -> speedup {:.3}",
        base_total,
        cdp_total,
        base_total as f64 / cdp_total as f64
    );
    println!(
        "note the first window (cold caches) misses hardest in both runs — \
         the §2.2 warm-up rationale."
    );
}
