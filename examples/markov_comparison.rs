//! The §5 comparison in miniature: equal-silicon Markov configurations
//! versus the (stateless) content prefetcher on a pointer workload.
//!
//! The Markov prefetcher spends megabytes on a state-transition table and
//! needs a training phase; the content prefetcher needs neither, and can
//! mask even compulsory misses — which is exactly what this example shows.
//!
//! ```text
//! cargo run --release --example markov_comparison
//! ```

use cdp::sim::{speedup, RunLength, Simulator};
use cdp::types::{MarkovConfig, SystemConfig};
use cdp::workloads::suite::Benchmark;

fn main() {
    let scale = RunLength::Quick.scale();
    let warmup = (scale.target_uops / 6) as u64;
    let workload = Benchmark::Slsb.build(scale, 0x5eed_2002);

    let mut base_cfg = SystemConfig::asplos2002();
    base_cfg.warmup_uops = warmup;
    let base = Simulator::new(base_cfg).run(&workload);
    println!(
        "baseline (1MB UL2 + stride) on {}: {} cycles\n",
        workload.name, base.cycles
    );

    let configs: Vec<(&str, SystemConfig)> = vec![
        (
            "markov_1/8 (896KB UL2 + 128KB STAB)",
            SystemConfig::with_markov(MarkovConfig::eighth(), 896 * 1024, 7),
        ),
        (
            "markov_1/2 (512KB UL2 + 512KB STAB)",
            SystemConfig::with_markov(MarkovConfig::half(), 512 * 1024, 8),
        ),
        (
            "markov_big (1MB UL2 + unbounded STAB)",
            SystemConfig::with_markov(MarkovConfig::unbounded(), 1024 * 1024, 8),
        ),
        ("content    (1MB UL2 + CDP, ~0 state)", SystemConfig::with_content()),
    ];

    println!(
        "{:40} {:>8}  {:>8}  prefetcher state",
        "configuration", "speedup", "issued"
    );
    for (name, mut cfg) in configs {
        cfg.warmup_uops = warmup;
        let r = Simulator::new(cfg).run(&workload);
        let issued = r.mem.markov.issued + r.mem.content.issued;
        let state = match r.markov {
            Some(mk) => format!("STAB trained {} transitions", mk.trained),
            None => "2 depth bits per L2 line".to_string(),
        };
        println!(
            "{:40} {:>8.3}  {:>8}  {}",
            name,
            speedup(&base, &r),
            issued,
            state
        );
    }
    println!("\npaper: markov_big gains only ~4.5%; the content prefetcher ~3x more, at almost no cost");
}
