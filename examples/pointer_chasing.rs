//! Pointer chasing under the microscope: build a bare linked list, watch
//! the content prefetcher chase it, and compare heap layouts.
//!
//! Demonstrates the paper's core mechanism at the smallest possible scale:
//! the VAM heuristic finds next pointers in fill data, chains run ahead of
//! the program, and an aged (shuffled) heap is exactly the regime where
//! the stride prefetcher fails but content-directed prefetching works.
//!
//! ```text
//! cargo run --release --example pointer_chasing
//! ```

use cdp::core::Program;
use cdp::mem::AddressSpace;
use cdp::sim::{speedup, Simulator};
use cdp::types::SystemConfig;
use cdp::types::rng::Rng;
use cdp::workloads::structures::build_list;
use cdp::workloads::{Heap, TraceBuilder};
use cdp::workloads::suite::{Suite, Workload};

/// Builds a workload that does nothing but walk a linked list end to end,
/// with `alu_per_node` dependent work uops per node.
fn list_walk(nodes: usize, node_size: usize, shuffle: bool, passes: usize) -> Workload {
    let mut space = AddressSpace::new();
    let mut heap = Heap::new(Heap::DEFAULT_BASE, 1 << 26);
    let mut rng = Rng::seed_from_u64(7);
    let list = build_list(&mut space, &mut heap, &mut rng, nodes, node_size, shuffle);
    let mut tb = TraceBuilder::new();
    for _ in 0..passes {
        tb.chase(1, &list.nodes, 1, 12);
    }
    let program: Program = tb.build();
    Workload {
        name: format!(
            "list-walk({nodes} x {node_size}B, {})",
            if shuffle { "aged heap" } else { "fresh heap" }
        ),
        suite: Suite::Workstation,
        program,
        space,
        stream: None,
    }
}

fn measure(w: &Workload) {
    let base = Simulator::new(SystemConfig::asplos2002()).run(w);
    let cdp = Simulator::new(SystemConfig::with_content()).run(w);
    println!("--- {}", w.name);
    println!(
        "  baseline: {:>9} cycles (MPTU {:>6.1}, stride issued {})",
        base.cycles,
        base.mptu(),
        base.mem.stride.issued
    );
    println!(
        "  with CDP: {:>9} cycles -> speedup {:.3}",
        cdp.cycles,
        speedup(&base, &cdp)
    );
    println!(
        "  CDP: issued {} / useful {} full + {} partial / scans {} / rescans {}",
        cdp.mem.content.issued,
        cdp.mem.content.useful_full,
        cdp.mem.content.useful_partial,
        cdp.content.map(|c| c.fills_scanned).unwrap_or(0),
        cdp.mem.rescans,
    );
}

fn main() {
    println!("Content-directed prefetching on a bare linked-list walk\n");

    // A fresh heap: allocation order == traversal order, one node per
    // cache line. The walk misses like a constant-stride array scan, which
    // the baseline's stride prefetcher already predicts.
    measure(&list_walk(30_000, 64, false, 3));
    println!();

    // An aged heap: traversal hops between allocation neighborhoods.
    // Stride prediction fails; only reading the pointers out of the fill
    // data can stay ahead of the walk.
    measure(&list_walk(30_000, 64, true, 3));
}
