//! # cdp — Content-Directed Data Prefetching, reproduced
//!
//! A full reproduction of Cooksey, Jourdan & Grunwald, *A Stateless,
//! Content-Directed Data Prefetching Mechanism* (ASPLOS 2002), built as a
//! cycle-level out-of-order CPU and memory-hierarchy simulator in Rust.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`types`] — address newtypes, request kinds, and [`types::SystemConfig`]
//!   (Table 1 of the paper).
//! * [`mem`] — set-associative caches, TLBs, page walker, arbiters, bus,
//!   and the byte-level virtual memory image.
//! * [`core`] — the 3-wide out-of-order core model (gshare, ROB, LSQ).
//! * [`prefetch`] — the stride, **content-directed**, and Markov prefetchers,
//!   plus the virtual-address-matching (VAM) heuristic.
//! * [`workloads`] — synthetic linked-data-structure workloads standing in
//!   for the paper's 15 commercial traces.
//! * [`sim`] — the full-system simulator, statistics, and speedup harness.
//! * [`obs`] — structured event tracing, JSON/JSONL serialization, and run
//!   manifests for machine-readable experiment artifacts.
//! * [`snap`] — the versioned, checksummed snapshot codec behind
//!   checkpoint/resume (DESIGN.md §12).
//! * [`store`] — the crash-safe on-disk result store and the deterministic
//!   filesystem fault-injection layer (DESIGN.md §14).
//! * [`experiments`] — one entry point per paper table/figure.
//!
//! # Quickstart
//!
//! ```
//! use cdp::sim::{Simulator, RunLength};
//! use cdp::types::SystemConfig;
//! use cdp::workloads::suite::Benchmark;
//!
//! // Build a small pointer-chasing workload.
//! let workload = Benchmark::SpecjbbVsnet.build(RunLength::Smoke.scale(), 42);
//!
//! // Run it on the stride-only baseline and on the CDP-enhanced system.
//! let base = Simulator::new(SystemConfig::asplos2002()).run(&workload);
//! let cdp = Simulator::new(SystemConfig::with_content()).run(&workload);
//!
//! // The content prefetcher should not slow the pointer workload down.
//! assert!(cdp.cycles <= base.cycles);
//! ```

pub use cdp_core as core;
pub use cdp_experiments as experiments;
pub use cdp_mem as mem;
pub use cdp_obs as obs;
pub use cdp_prefetch as prefetch;
pub use cdp_sim as sim;
pub use cdp_snap as snap;
pub use cdp_store as store;
pub use cdp_types as types;
pub use cdp_workloads as workloads;
