//! Persistent result store contract (DESIGN.md §14).
//!
//! The store's promise mirrors the snapshot codec's (DESIGN.md §12):
//! every way an entry file can be damaged on disk — truncation, bit
//! flips, foreign magic, an entry published under the wrong cell key, a
//! future format version — must surface as a typed error from `check`,
//! quarantine the file on `get`, and fall back to recomputation. No file
//! contents may ever panic the decoder or replay corrupt data.

use std::path::PathBuf;
use std::sync::Arc;

use cdp::sim::{decode_result, encode_result, ResultCache, SimJob};
use cdp::snap::SnapWriter;
use cdp::store::{clean_stale_parts, RealIo, ResultStore, ENTRY_VERSION, TAG_META, TAG_PAYLOAD};
use cdp::types::{SnapshotError, StoreError};
use cdp::workloads::suite::Benchmark;
use cdp_testutil::tiny_workload;

/// A fresh per-test scratch directory (std-only; no tempfile crate in
/// this workspace). Cleared on entry so reruns start cold.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdp-result-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn entry_path(root: &std::path::Path, key: u64) -> PathBuf {
    root.join(format!("cell-{key:016x}.res"))
}

fn quarantine_count(root: &std::path::Path) -> usize {
    std::fs::read_dir(root.join("quarantine"))
        .map(|d| d.count())
        .unwrap_or(0)
}

#[test]
fn roundtrip_replays_across_process_equivalent_handles() {
    let dir = scratch("roundtrip");
    let key = 0xdead_beef_0042_0001;
    let payload = b"paper table cell bytes".to_vec();
    {
        let store = ResultStore::open(&dir).expect("open store");
        store.put(key, &payload);
        assert_eq!(store.stats().write_failures, 0);
    }
    // A brand-new handle — the cross-process warm path.
    let store = ResultStore::open(&dir).expect("reopen store");
    assert_eq!(store.get(key).as_deref(), Some(&payload[..]));
    assert_eq!(store.get(0x0bad_0bad), None, "absent key is a miss");
    let s = store.stats();
    assert_eq!((s.hits, s.misses, s.quarantined), (1, 1, 0));
}

/// Every corruption mode quarantines on `get` (miss, file moved aside,
/// never replayed) and a re-`put` recomputed entry replays cleanly.
#[test]
fn corruption_matrix_quarantines_and_recomputes() {
    let key = 0x0123_4567_89ab_cdef;
    let payload = b"stats payload".to_vec();
    type Damage = Box<dyn Fn(&PathBuf)>;
    let damage: Vec<(&str, Damage)> = vec![
        (
            "bit-flip",
            Box::new(|p: &PathBuf| {
                let mut bytes = std::fs::read(p).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x10;
                std::fs::write(p, bytes).unwrap();
            }),
        ),
        (
            "truncation",
            Box::new(|p: &PathBuf| {
                let bytes = std::fs::read(p).unwrap();
                std::fs::write(p, &bytes[..bytes.len() / 2]).unwrap();
            }),
        ),
        (
            "bad-magic",
            Box::new(|p: &PathBuf| {
                let mut bytes = std::fs::read(p).unwrap();
                bytes[0] ^= 0xff;
                std::fs::write(p, bytes).unwrap();
            }),
        ),
        (
            "empty-file",
            Box::new(|p: &PathBuf| {
                std::fs::write(p, b"").unwrap();
            }),
        ),
    ];
    for (name, damage) in damage {
        let dir = scratch(&format!("matrix-{name}"));
        let store = ResultStore::open(&dir).expect("open store");
        store.put(key, &payload);
        let path = entry_path(&dir, key);
        damage(&path);
        assert!(
            store.check(key).is_err(),
            "{name}: damaged entry must be a typed error, got Ok"
        );
        assert_eq!(store.get(key), None, "{name}: damaged entry is a miss");
        assert!(!path.exists(), "{name}: damaged entry moved aside");
        assert_eq!(quarantine_count(&dir), 1, "{name}: quarantined");
        // Recompute path: the caller re-puts and the store replays again.
        store.put(key, &payload);
        assert_eq!(store.get(key).as_deref(), Some(&payload[..]), "{name}");
        let s = store.stats();
        assert_eq!((s.misses, s.quarantined), (1, 1), "{name}: counters");
    }
}

#[test]
fn wrong_fingerprint_is_typed_and_quarantined() {
    let dir = scratch("wrong-key");
    let store = ResultStore::open(&dir).expect("open store");
    let (key_a, key_b) = (0x1111_1111_1111_1111, 0x2222_2222_2222_2222);
    store.put(key_a, b"cell A");
    // Publish A's (internally valid) entry under B's name — the cell-key
    // fingerprint in the header catches the mismatch at parse.
    std::fs::copy(entry_path(&dir, key_a), entry_path(&dir, key_b)).unwrap();
    match store.check(key_b) {
        Err(StoreError::Entry(SnapshotError::FingerprintMismatch { expected, found })) => {
            assert_eq!(expected, key_b);
            assert_eq!(found, key_a);
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    assert_eq!(store.get(key_b), None);
    assert_eq!(quarantine_count(&dir), 1);
    // The donor entry is untouched.
    assert_eq!(store.get(key_a).as_deref(), Some(&b"cell A"[..]));
}

#[test]
fn future_entry_version_is_typed_and_quarantined() {
    let dir = scratch("version-skew");
    let store = ResultStore::open(&dir).expect("open store");
    let key = 0x3333_3333_3333_3333;
    // Hand-craft an entry from one format version ahead: valid envelope,
    // valid checksums, unreadable meaning.
    let mut w = SnapWriter::new(key);
    w.section(TAG_META, |e| {
        e.u32(ENTRY_VERSION + 1);
        e.u64(1);
    });
    w.section(TAG_PAYLOAD, |e| e.bytes(b"from the future"));
    std::fs::write(entry_path(&dir, key), w.finish()).unwrap();
    match store.check(key) {
        Err(StoreError::Entry(SnapshotError::UnsupportedVersion { found, supported })) => {
            assert_eq!(found, ENTRY_VERSION + 1);
            assert_eq!(supported, ENTRY_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    assert_eq!(store.get(key), None);
    assert_eq!(quarantine_count(&dir), 1);
}

#[test]
fn stale_parts_are_swept_on_open_and_by_fsck() {
    let dir = scratch("stale-parts");
    // Litter from a writer killed between write and rename.
    std::fs::write(dir.join("cell-0000000000000001.123-0.part"), b"torn").unwrap();
    std::fs::write(dir.join("cell-0000000000000002.123-1.part"), b"torn").unwrap();
    let store = ResultStore::open(&dir).expect("open sweeps parts");
    let leftover: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("part"))
        .collect();
    assert!(leftover.is_empty(), "open swept .part litter: {leftover:?}");
    // And the shared helper works on arbitrary dirs (checkpoint dirs).
    let side = scratch("stale-parts-side");
    std::fs::write(side.join("ckpt-1.part"), b"torn").unwrap();
    std::fs::write(side.join("ckpt-1.snap"), b"published").unwrap();
    assert_eq!(clean_stale_parts(&RealIo, &side), 1);
    assert!(side.join("ckpt-1.snap").exists(), "published file untouched");
    drop(store);
}

#[test]
fn fsck_reports_and_repairs_then_is_clean() {
    let dir = scratch("fsck");
    let store = ResultStore::open(&dir).expect("open store");
    store.put(1, b"good one");
    store.put(2, b"good two");
    store.put(3, b"will break");
    let victim = entry_path(&dir, 3);
    let mut bytes = std::fs::read(&victim).unwrap();
    let len = bytes.len();
    bytes[len - 1] ^= 0x01;
    std::fs::write(&victim, bytes).unwrap();
    std::fs::write(dir.join("cell-0000000000000009.42-0.part"), b"torn").unwrap();

    let report = store.fsck(false).expect("read-only fsck");
    assert_eq!(report.valid, 2);
    assert_eq!(report.corrupt.len(), 1);
    assert_eq!(report.stale_parts, 1);
    assert!(!report.is_clean());
    assert!(victim.exists(), "read-only fsck does not move files");

    let report = store.fsck(true).expect("repairing fsck");
    assert_eq!(report.corrupt.len(), 1);
    assert!(!victim.exists(), "repair quarantines the damaged entry");

    let report = store.fsck(false).expect("post-repair fsck");
    assert!(report.is_clean(), "store clean after repair: {report:?}");
    assert_eq!(report.valid, 2);
}

#[test]
fn gc_drops_entries_older_than_kept_generations() {
    let dir = scratch("gc");
    {
        let old = ResultStore::open(&dir).expect("gen 1");
        old.put(10, b"old entry");
    }
    // Two more opens bump the generation twice; keep=1 then reaches back
    // only one generation, so the gen-1 entry falls out.
    let _mid = ResultStore::open(&dir).expect("gen 2");
    let store = ResultStore::open(&dir).expect("gen 3");
    store.put(11, b"fresh entry");
    let removed = store.gc(1).expect("gc");
    assert_eq!(removed, 1, "exactly the old entry collected");
    assert_eq!(store.get(10), None);
    assert_eq!(store.get(11).as_deref(), Some(&b"fresh entry"[..]));
}

/// End-to-end through the sim layer: a real cell's `RunStats` +
/// `Observation` survive the encode → store → decode round trip, and a
/// store-backed `ResultCache` in a fresh process-equivalent replays the
/// cell from disk with identical results.
#[test]
fn real_cell_roundtrips_through_store_backed_cache() {
    let dir = scratch("real-cell");
    let w = Arc::new(tiny_workload(Benchmark::Slsb, 7));
    let cfg = cdp::types::SystemConfig::with_content();
    let key = 0x5eed_0000_0000_0001;

    let reference = SimJob::new("cell", cfg.clone(), Arc::clone(&w))
        .try_execute()
        .expect("reference run");

    // Cold pass: computes and persists.
    {
        let store = Arc::new(ResultStore::open(&dir).expect("open store"));
        let cache = Arc::new(ResultCache::with_store(Arc::clone(&store)));
        let stats = SimJob::new("cell", cfg.clone(), Arc::clone(&w))
            .with_result_cache(Arc::clone(&cache), key)
            .try_execute()
            .expect("cold run");
        assert_eq!(format!("{reference:?}"), format!("{stats:?}"));
        let s = store.stats();
        assert_eq!((s.hits, s.misses), (0, 1), "cold pass misses then persists");
    }

    // Warm pass, fresh handle and fresh (empty) L1: replays from disk.
    let store = Arc::new(ResultStore::open(&dir).expect("reopen store"));
    let cache = Arc::new(ResultCache::with_store(Arc::clone(&store)));
    let stats = SimJob::new("cell", cfg, Arc::clone(&w))
        .with_result_cache(Arc::clone(&cache), key)
        .try_execute()
        .expect("warm run");
    assert_eq!(
        format!("{reference:?}"),
        format!("{stats:?}"),
        "replayed cell diverged from computed cell"
    );
    let s = store.stats();
    assert_eq!((s.hits, s.misses), (1, 0), "warm pass replays every cell");

    // The persisted payload itself decodes with the sim codec.
    let payload = store.get(key).expect("payload present");
    let (decoded, obs) = decode_result(&payload).expect("payload decodes");
    assert_eq!(format!("{reference:?}"), format!("{decoded:?}"));
    assert_eq!(payload, encode_result(&decoded, obs.as_ref()), "re-encode is stable");
}
