//! Differential snapshot/resume harness (DESIGN.md §12).
//!
//! The checkpointing contract is `resume(snapshot(S))` continues
//! *bit-identically*: a run interrupted at any step boundary and resumed
//! in a brand-new process-equivalent (fresh `Simulator`, fresh
//! `SimSession`) must produce the same `RunStats`, the same metrics
//! windows, and the same trace events as the uninterrupted reference.
//! These tests enforce that contract across benchmarks, with randomized
//! snapshot points, with fault injection live, and through an actual
//! on-disk round trip — plus the corruption paths (truncation, bit
//! flips, wrong fingerprint, future version), which must all surface as
//! typed errors, never panics.

use std::path::PathBuf;
use std::sync::Arc;

use cdp::sim::{
    CheckpointProvenance, CheckpointSpec, CheckpointStatus, SimJob, SimSession, Simulator,
    WalkFault,
};
use cdp::types::{
    CdpError, DeltaConfig, JumpConfig, ObsConfig, PerceptronConfig, SnapshotError, SystemConfig,
    TraceConfig,
};
use cdp::workloads::suite::{Benchmark, Scale};
use cdp::workloads::Workload;
use cdp_testutil::{seeded_rng, tiny_workload};

/// An observability config exercising both capture paths (trace ring +
/// metrics windows). Small windows give every smoke run several step
/// boundaries to snapshot at.
fn obs_cfg() -> ObsConfig {
    ObsConfig {
        trace: Some(TraceConfig::default()),
        metrics_window: Some(4_000),
        profile_hist: true,
    }
}

/// A fresh per-test scratch directory under the target-adjacent temp
/// root (std-only; no tempfile crate in this workspace).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cdp-snapshot-resume-{}-{tag}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Counts the step boundaries (`step()` returning `false`) a session
/// passes through before completion.
fn count_steps(sim: &Simulator, w: &Workload, obs: Option<&ObsConfig>) -> usize {
    let mut session = sim.session(w, obs);
    let mut steps = 0;
    while !session.step().expect("reference run is fault-free") {
        steps += 1;
    }
    steps
}

/// Runs uninterrupted, then re-runs with a snapshot/drop/resume at step
/// `cut`, and asserts stats + observation are identical. Returns the
/// snapshot bytes so callers can reuse them for corruption tests.
fn assert_roundtrip_at(
    cfg: &SystemConfig,
    walk_fault: Option<WalkFault>,
    w: &Workload,
    obs: Option<&ObsConfig>,
    cut: usize,
) -> Vec<u8> {
    let build = |cfg: &SystemConfig| {
        let sim = Simulator::new(cfg.clone());
        match walk_fault {
            Some(f) => sim.with_walk_fault(f),
            None => sim,
        }
    };
    // Reference: uninterrupted.
    let sim = build(cfg);
    let mut reference = sim.session(w, obs);
    while !reference.step().expect("reference run") {}
    let (ref_stats, ref_obs) = reference.finish();

    // Interrupted: step to `cut`, snapshot, throw the session (and the
    // simulator) away, resume in fresh ones.
    let sim = build(cfg);
    let mut session = sim.session(w, obs);
    for s in 0..cut {
        assert!(!session.step().expect("pre-cut step"), "run ended at step {s}, cut {cut} too late");
    }
    let bytes = session.snapshot();
    drop(session);

    let sim = build(cfg);
    let mut resumed: SimSession = sim.resume(w, obs, &bytes).expect("snapshot resumes");
    while !resumed.step().expect("post-cut step") {}
    let (stats, observation) = resumed.finish();

    assert_eq!(
        format!("{ref_stats:?}"),
        format!("{stats:?}"),
        "RunStats diverged after resume at step {cut}"
    );
    assert_eq!(ref_obs.windows, observation.windows, "metrics windows diverged");
    assert_eq!(ref_obs.events, observation.events, "trace events diverged");
    assert_eq!(ref_obs.trace_recorded, observation.trace_recorded);
    assert_eq!(ref_obs.trace_overwritten, observation.trace_overwritten);
    assert_eq!(ref_obs.trace_sampled_out, observation.trace_sampled_out);
    // Histogram state (bucket counts, min/max, totals) must round-trip
    // through the snapshot bit-identically, not just the percentiles.
    assert_eq!(ref_obs.profile, observation.profile, "latency profile diverged");
    if obs.is_some_and(|o| o.profile_hist) {
        let p = ref_obs.profile.as_ref().expect("profile collected");
        assert!(!p.load_to_use.is_empty(), "profile recorded load samples");
    }
    bytes
}

#[test]
fn randomized_cuts_across_benchmarks_are_bit_identical() {
    // Fault injection stays live through the snapshot: every 64th
    // prefetch-candidate walk fails, so the squash path state must
    // round-trip too.
    let fault = WalkFault {
        period: 64,
        demand: false,
    };
    let cfg = SystemConfig::with_content();
    let obs = obs_cfg();
    let mut rng = seeded_rng(0x5eed_0001);
    for (i, bench) in [
        Benchmark::Slsb,
        Benchmark::SpecjbbVsnet,
        Benchmark::Tpcc1,
        Benchmark::B2e,
        Benchmark::Quake,
    ]
    .into_iter()
    .enumerate()
    {
        let w = tiny_workload(bench, 42 + i as u64);
        let sim = Simulator::new(cfg.clone()).with_walk_fault(fault);
        let steps = count_steps(&sim, &w, Some(&obs));
        assert!(steps >= 2, "{bench:?} too short to cut: {steps} step(s)");
        // A randomized interior cut, plus the first boundary (the
        // warm-up hand-off, the trickiest state transition).
        let cut = 1 + rng.gen_range_usize(1..steps);
        assert_roundtrip_at(&cfg, Some(fault), &w, Some(&obs), cut);
        assert_roundtrip_at(&cfg, Some(fault), &w, Some(&obs), 1);
    }
}

#[test]
fn zoo_engines_roundtrip_at_randomized_cuts() {
    // Every engine added by the tournament zoo carries its own snapshot
    // section (delta table, jump table, perceptron weights); each gets
    // the same randomized-cut differential treatment as the content
    // engine — resume mid-cell, bit-identical finish — plus the
    // corrupt-section checks on its snapshot bytes.
    let configs: Vec<(&str, SystemConfig)> = vec![
        (
            "delta",
            SystemConfig::with_delta(DeltaConfig::pangloss(16 * 1024)),
        ),
        ("jump", SystemConfig::with_jump(JumpConfig::sized(16 * 1024))),
        (
            "cdp+perceptron",
            SystemConfig::with_content()
                .gated(PerceptronConfig::with_budget(16 * 1024).expect("budget fits")),
        ),
    ];
    let obs = obs_cfg();
    let mut rng = seeded_rng(0x5eed_0004);
    for (i, (name, cfg)) in configs.into_iter().enumerate() {
        let w = tiny_workload(Benchmark::Tpcc1, 77 + i as u64);
        let sim = Simulator::new(cfg.clone());
        let steps = count_steps(&sim, &w, Some(&obs));
        assert!(steps >= 2, "{name}: too short to cut ({steps} step(s))");
        let cut = 1 + rng.gen_range_usize(1..steps);
        let bytes = assert_roundtrip_at(&cfg, None, &w, Some(&obs), cut);
        // A corrupted engine section must surface as a typed error: flip
        // a byte in the back half of the snapshot, where the hierarchy's
        // engine chain (and thus the new engine's table) lives.
        for _ in 0..4 {
            let mut flipped = bytes.clone();
            let at = rng.gen_range_usize(bytes.len() / 2..bytes.len());
            flipped[at] ^= 0x01;
            assert!(
                matches!(
                    sim.resume(&w, Some(&obs), &flipped),
                    Err(CdpError::Snapshot(_))
                ),
                "{name}: flipped byte at {at} must be a typed error"
            );
        }
        // And a snapshot from a zoo config must refuse to resume on a
        // system without that engine (fingerprint mismatch).
        let other = Simulator::new(SystemConfig::asplos2002());
        assert!(
            matches!(
                other.resume(&w, Some(&obs), &bytes),
                Err(CdpError::Snapshot(SnapshotError::FingerprintMismatch { .. }))
            ),
            "{name}: snapshot must be pinned to its engine config"
        );
    }
}

#[test]
fn plain_sessions_roundtrip_at_fault_check_boundaries() {
    // Without observability the session steps in coarse fault-check
    // windows; a larger-than-smoke run gives it interior boundaries.
    let scale = Scale {
        target_uops: 150_000,
        footprint_div: 16,
    };
    let w = Benchmark::Slsb.build(scale, 7);
    let mut cfg = SystemConfig::with_content();
    cfg.warmup_uops = 10_000;
    let sim = Simulator::new(cfg.clone());
    let steps = count_steps(&sim, &w, None);
    assert!(steps >= 2, "expected interior boundaries, got {steps}");
    let mut rng = seeded_rng(0x5eed_0002);
    let cut = 1 + rng.gen_range_usize(0..steps);
    assert_roundtrip_at(&cfg, None, &w, None, cut);
}

#[test]
fn disk_roundtrip_and_every_corruption_is_a_typed_error() {
    let cfg = SystemConfig::with_content();
    let obs = obs_cfg();
    let w = tiny_workload(Benchmark::SpecjbbVsnet, 42);
    let bytes = assert_roundtrip_at(&cfg, None, &w, Some(&obs), 2);

    // Through the filesystem: what a checkpoint file actually does.
    let dir = scratch("disk");
    let path = dir.join("cell.snap");
    std::fs::write(&path, &bytes).expect("write checkpoint");
    let read = std::fs::read(&path).expect("read checkpoint");
    let sim = Simulator::new(cfg.clone());
    let mut resumed = sim.resume(&w, Some(&obs), &read).expect("disk roundtrip");
    while !resumed.step().expect("resumed run") {}

    // Truncation at randomized points: typed error, never a panic.
    let mut rng = seeded_rng(0x5eed_0003);
    for _ in 0..16 {
        let len = rng.gen_range_usize(0..bytes.len());
        assert!(
            matches!(
                sim.resume(&w, Some(&obs), &bytes[..len]),
                Err(CdpError::Snapshot(_))
            ),
            "truncation to {len} bytes must be a typed error"
        );
    }

    // A flipped byte anywhere past the header breaks a checksum (or the
    // structure); either way it is a typed error.
    for _ in 0..16 {
        let mut flipped = bytes.clone();
        let at = rng.gen_range_usize(24..flipped.len());
        flipped[at] ^= 0x80;
        assert!(
            matches!(
                sim.resume(&w, Some(&obs), &flipped),
                Err(CdpError::Snapshot(_))
            ),
            "flipped byte at {at} must be a typed error"
        );
    }

    // Wrong fingerprint: the same bytes offered to a different config.
    let other = Simulator::new(SystemConfig::asplos2002());
    assert!(matches!(
        other.resume(&w, Some(&obs), &bytes),
        Err(CdpError::Snapshot(SnapshotError::FingerprintMismatch { .. }))
    ));

    // Future format version (bytes 8..12, after the 8-byte magic).
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        sim.resume(&w, Some(&obs), &future),
        Err(CdpError::Snapshot(SnapshotError::UnsupportedVersion { found: 99, .. }))
    ));

    // Bad magic.
    let mut bad = bytes;
    bad[0] ^= 0xff;
    assert!(matches!(
        sim.resume(&w, Some(&obs), &bad),
        Err(CdpError::Snapshot(SnapshotError::BadMagic))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn simjob_checkpointing_reports_provenance_and_stays_identical() {
    // Warm-up gives the plain (coarse-window) session a step boundary to
    // seed mid-run checkpoints at.
    let mut cfg = SystemConfig::with_content();
    cfg.warmup_uops = 5_000;
    let w = Arc::new(tiny_workload(Benchmark::Slsb, 42));
    let reference = SimJob::new("ref", cfg.clone(), Arc::clone(&w))
        .try_execute()
        .expect("reference cell");
    let dir = scratch("job");
    let spec = |resume: bool, status: &Arc<CheckpointStatus>| CheckpointSpec {
        dir: dir.clone(),
        every: 10_000,
        key: 0xc0ffee,
        resume,
        status: Some(Arc::clone(status)),
        io: None,
    };

    // Fresh: no checkpoint on disk.
    let status = CheckpointStatus::shared();
    let stats = SimJob::new("fresh", cfg.clone(), Arc::clone(&w))
        .with_checkpoint(spec(true, &status))
        .try_execute()
        .expect("fresh cell");
    assert_eq!(status.get(), CheckpointProvenance::Fresh);
    assert_eq!(format!("{reference:?}"), format!("{stats:?}"));

    let path = dir.join(format!("cell-{:016x}.snap", 0xc0ffeeu64));
    assert!(
        !path.exists(),
        "completed cells must remove their checkpoint"
    );

    // Resumed: seed a genuine mid-run checkpoint, then run the job.
    let sim = Simulator::new(cfg.clone());
    let mut session = sim.session(&w, None);
    assert!(!session.step().expect("seed step"));
    std::fs::write(&path, session.snapshot()).expect("seed checkpoint");
    let status = CheckpointStatus::shared();
    let stats = SimJob::new("resumed", cfg.clone(), Arc::clone(&w))
        .with_checkpoint(spec(true, &status))
        .try_execute()
        .expect("resumed cell");
    assert_eq!(status.get(), CheckpointProvenance::Resumed);
    assert_eq!(format!("{reference:?}"), format!("{stats:?}"));
    assert!(!path.exists());

    // Corrupt fallback: garbage on disk restarts fresh, same result.
    std::fs::write(&path, b"not a snapshot").expect("garbage checkpoint");
    let status = CheckpointStatus::shared();
    let stats = SimJob::new("corrupt", cfg.clone(), Arc::clone(&w))
        .with_checkpoint(spec(true, &status))
        .try_execute()
        .expect("corrupt-fallback cell");
    assert_eq!(status.get(), CheckpointProvenance::CorruptFallback);
    assert_eq!(format!("{reference:?}"), format!("{stats:?}"));

    // resume=false ignores a present checkpoint entirely.
    let mut session = Simulator::new(cfg.clone()).session(&w, None);
    assert!(!session.step().expect("seed step"));
    std::fs::write(&path, session.snapshot()).expect("seed checkpoint");
    let status = CheckpointStatus::shared();
    let stats = SimJob::new("no-resume", cfg, Arc::clone(&w))
        .with_checkpoint(spec(false, &status))
        .try_execute()
        .expect("no-resume cell");
    assert_eq!(status.get(), CheckpointProvenance::Fresh);
    assert_eq!(format!("{reference:?}"), format!("{stats:?}"));
    let _ = std::fs::remove_dir_all(&dir);
}
