//! Cross-crate observability contract (DESIGN.md §7):
//!
//! * an observed run must produce exactly the same simulation results as
//!   the plain path — tracing and metrics windowing are read-only;
//! * window deltas must sum back to the run totals;
//! * the trace ring must honor its filter, capacity, and sampling knobs;
//! * a manifest assembled from real runs must validate and round-trip
//!   through the JSON parser.

use std::sync::Arc;

use cdp::experiments::obs::{build_manifest, CellRecord, ExperimentRecord, ObsTaken};
use cdp::obs::{Json, TraceData};
use cdp::sim::{JobObs, JobOutcome, ObsSink, Pool, RunPolicy, SimJob, Simulator};
use cdp::types::{ObsConfig, SystemConfig, TraceConfig, TraceFilter};
use cdp_testutil::default_workload as workload;

#[test]
fn observed_run_matches_plain_run_exactly() {
    let w = workload();
    let cfg = SystemConfig::with_content();
    let plain = Simulator::try_new(cfg.clone())
        .unwrap()
        .try_run(&w)
        .unwrap();
    // Full observability on: trace everything, tight metrics windows.
    let obs = ObsConfig {
        trace: Some(TraceConfig::default()),
        metrics_window: Some(10_000),
        profile_hist: true,
    };
    let (observed, observation) = Simulator::try_new(cfg.clone())
        .unwrap()
        .try_run_observed(&w, &obs)
        .unwrap();
    assert_eq!(plain.cycles, observed.cycles);
    assert_eq!(plain.retired, observed.retired);
    assert_eq!(plain.mem, observed.mem);
    assert_eq!(plain.bus, observed.bus);
    assert!(!observation.events.is_empty(), "tracing captured events");
    assert!(!observation.windows.is_empty(), "windowing captured series");
    // Observability fully off: the observed path still matches, and the
    // observation is empty.
    let (off, empty) = Simulator::try_new(cfg)
        .unwrap()
        .try_run_observed(&w, &ObsConfig::default())
        .unwrap();
    assert_eq!(plain.cycles, off.cycles);
    assert_eq!(plain.mem, off.mem);
    assert!(empty.events.is_empty() && empty.windows.is_empty());
    assert_eq!(empty.trace_recorded, 0);
}

#[test]
fn window_deltas_sum_to_run_totals() {
    let w = workload();
    let obs = ObsConfig {
        trace: None,
        metrics_window: Some(8_192),
        profile_hist: false,
    };
    let (stats, observation) = Simulator::try_new(SystemConfig::with_content())
        .unwrap()
        .try_run_observed(&w, &obs)
        .unwrap();
    assert!(observation.windows.len() > 1, "small window ⇒ many windows");
    let retired: u64 = observation.windows.iter().map(|x| x.retired).sum();
    let cycles: u64 = observation.windows.iter().map(|x| x.cycles).sum();
    let misses: u64 = observation.windows.iter().map(|x| x.l2_demand_misses).sum();
    let issued: u64 = observation.windows.iter().map(|x| x.content_issued).sum();
    assert_eq!(retired, stats.retired);
    assert_eq!(cycles, stats.cycles);
    assert_eq!(misses, stats.mem.l2_demand_misses);
    assert_eq!(issued, stats.mem.content.issued);
    // Windows are consecutively numbered from 0.
    for (i, win) in observation.windows.iter().enumerate() {
        assert_eq!(win.window, i);
    }
}

#[test]
fn trace_ring_honors_filter_capacity_and_sampling() {
    let w = workload();
    let run = |trace: TraceConfig| {
        Simulator::try_new(SystemConfig::with_content())
            .unwrap()
            .try_run_observed(
                &w,
                &ObsConfig {
                    trace: Some(trace),
                    metrics_window: None,
                    profile_hist: false,
                },
            )
            .unwrap()
            .1
    };
    // Filter: a vam-only ring records only VAM verdicts.
    let vam_only = run(TraceConfig {
        filter: TraceFilter::parse("vam").unwrap(),
        ..TraceConfig::default()
    });
    assert!(!vam_only.events.is_empty(), "content runs produce VAM scans");
    for e in &vam_only.events {
        assert!(
            matches!(
                e.data,
                TraceData::VamAccept { .. } | TraceData::VamReject { .. }
            ),
            "filtered ring leaked {:?}",
            e.data
        );
    }
    // Capacity: a tiny ring keeps only the newest events and counts the
    // overwritten ones.
    let tiny = run(TraceConfig {
        capacity: 32,
        ..TraceConfig::default()
    });
    assert!(tiny.events.len() <= 32);
    assert!(tiny.trace_overwritten > 0, "smoke run overflows 32 slots");
    assert_eq!(
        tiny.trace_recorded,
        tiny.events.len() as u64 + tiny.trace_overwritten
    );
    // Sampling: every eligible event is either recorded or sampled out,
    // and the partition is consistent with the sample-everything run.
    let full = run(TraceConfig::default());
    let sampled = run(TraceConfig {
        sample: 7,
        ..TraceConfig::default()
    });
    assert_eq!(full.trace_sampled_out, 0);
    assert!(sampled.trace_sampled_out > 0);
    assert_eq!(
        full.trace_recorded,
        sampled.trace_recorded + sampled.trace_sampled_out,
        "eligible-event count is deterministic"
    );
}

#[test]
fn manifest_from_real_runs_validates_and_round_trips() {
    let w = Arc::new(workload());
    let sink = ObsSink::shared();
    let obs_cfg = ObsConfig {
        trace: Some(TraceConfig {
            capacity: 256,
            ..TraceConfig::default()
        }),
        metrics_window: Some(16_384),
        profile_hist: true,
    };
    let jobs: Vec<SimJob> = [("base", SystemConfig::asplos2002()), ("cdp", SystemConfig::with_content())]
        .into_iter()
        .enumerate()
        .map(|(i, (label, cfg))| {
            SimJob::new(label, cfg, Arc::clone(&w)).with_obs(JobObs {
                cfg: obs_cfg.clone(),
                sink: Arc::clone(&sink),
                batch: 0,
                index: i,
            })
        })
        .collect();
    let reports = Pool::new(2).run_sims_profiled(jobs, RunPolicy::default());
    let taken = ObsTaken {
        cells: reports
            .iter()
            .map(|r| CellRecord {
                experiment: "obs-it".into(),
                label: r.label.clone(),
                status: if r.outcome.is_ok() { "ok" } else { "failed" },
                attempts: r.outcome.attempts(),
                wall_ms: r.wall.as_millis() as u64,
                config_fingerprint: cdp::obs::fingerprint_hex(r.label.as_bytes()),
                checkpoint: "off",
                retired: match &r.outcome {
                    JobOutcome::Ok(stats) => stats.retired,
                    _ => 0,
                },
                pf_issued: 0,
                pf_useful: 0,
                pf_wasted: 0,
            })
            .collect(),
        experiments: vec![ExperimentRecord {
            id: "obs-it".into(),
            wall_ms: 1,
        }],
        entries: sink.drain_sorted(),
        batch_experiments: vec!["obs-it".into()],
        result_cache_hits: 0,
        result_cache_misses: 0,
        result_store_hits: 0,
        result_store_misses: 0,
        result_store_quarantined: 0,
        checkpoint_dropped_writes: 0,
    };
    assert_eq!(taken.entries.len(), 2, "both runs delivered observations");
    let manifest = build_manifest("smoke", 2, &taken);
    cdp::obs::validate(&manifest).expect("schema-valid");
    let reparsed = Json::parse(&manifest.to_string()).expect("serializes to valid JSON");
    cdp::obs::validate(&reparsed).expect("valid after round-trip");
    let agg = reparsed.get("aggregates").expect("aggregates present");
    assert_eq!(agg.get("cells_total").unwrap().as_u64(), Some(2));
    assert!(agg.get("metrics_windows_total").unwrap().as_u64().unwrap() > 0);
    assert!(agg.get("trace_events_total").unwrap().as_u64().unwrap() > 0);
}
