//! Qualitative paper-shape tests: the claims of Cooksey, Jourdan &
//! Grunwald that must hold in any faithful reproduction, checked at smoke
//! scale through the public API.

use cdp::prefetch::{is_candidate, ContentPrefetcher};
use cdp::sim::{speedup, RunLength, Simulator};
use cdp::types::{ContentConfig, MarkovConfig, SystemConfig, VamConfig, VirtAddr};
use cdp::workloads::suite::Benchmark;

/// §3.3: the worked VAM examples — shared upper bits accept, differing
/// bits reject, alignment and the extreme-region filters apply.
#[test]
fn vam_heuristic_matches_the_papers_rules() {
    let cfg = VamConfig::tuned();
    let trigger = VirtAddr(0x1040_2468);
    assert!(is_candidate(0x10ab_cde0, trigger, &cfg));
    assert!(!is_candidate(0x11ab_cde0, trigger, &cfg), "compare bits");
    assert!(!is_candidate(0x10ab_cde1, trigger, &cfg), "align bit");
    // Zero region: small integers rejected, plausible addresses rescued
    // by the filter bits.
    let low = VirtAddr(0x00ab_0000);
    assert!(!is_candidate(0x0000_1234, low, &cfg));
    assert!(is_candidate(0x00b0_1234, low, &cfg));
    // One region: small negatives rejected.
    let hi = VirtAddr(0xffab_0000);
    assert!(!is_candidate(0xffff_fffe, hi, &cfg));
    assert!(is_candidate(0xff0b_1234, hi, &cfg));
}

/// §3.4.1 / Figure 3: chains stop at the depth threshold.
#[test]
fn chains_respect_the_depth_threshold() {
    let mut cdp = ContentPrefetcher::new(ContentConfig {
        next_lines: 0,
        ..ContentConfig::tuned()
    });
    let mut line = [0u8; 64];
    line[0..4].copy_from_slice(&0x1000_4000u32.to_le_bytes());
    let mut out = Vec::new();
    assert!(cdp.scan_fill(VirtAddr(0x1000_0000), &line, 2, &mut out) > 0);
    assert_eq!(out[0].kind.depth(), 3);
    out.clear();
    assert_eq!(cdp.scan_fill(VirtAddr(0x1000_0000), &line, 3, &mut out), 0);
    assert!(out.is_empty(), "depth-3 fill is not scanned at threshold 3");
}

/// Abstract / §1: the prefetcher needs no training period — it masks
/// compulsory misses on the very first traversal, which a Markov
/// prefetcher cannot.
#[test]
fn content_masks_compulsory_misses_markov_cannot() {
    // Seed chosen so the smoke-scale trace draws pointer-chase phases
    // (some seeds draw mostly index-chase work, which is unchaseable by
    // design).
    let w = Benchmark::Slsb.build(RunLength::Smoke.scale(), 18);
    // No warm-up: everything is a compulsory miss.
    let base = Simulator::new(SystemConfig::asplos2002()).run(&w);
    let cdp = Simulator::new(SystemConfig::with_content()).run(&w);
    let markov =
        Simulator::new(SystemConfig::with_markov(MarkovConfig::unbounded(), 1 << 20, 8)).run(&w);
    assert!(
        cdp.mem.content.useful() > 50,
        "CDP masks cold misses: {}",
        cdp.mem.content.useful()
    );
    let s_cdp = speedup(&base, &cdp);
    let s_markov = speedup(&base, &markov);
    assert!(
        s_cdp > s_markov,
        "content ({s_cdp:.3}) must beat a still-training Markov ({s_markov:.3})"
    );
}

/// §4.2.1: on pointer-intensive workloads, the tuned configuration with
/// path reinforcement is at least as good as the stateless one.
#[test]
fn reinforcement_does_not_hurt_pointer_workloads() {
    let w = Benchmark::Tpcc3.build(RunLength::Smoke.scale(), 17);
    let base = Simulator::new(SystemConfig::asplos2002()).run(&w);
    let reinf = Simulator::new(SystemConfig::with_content()).run(&w);
    let mut nr_cfg = SystemConfig::asplos2002();
    nr_cfg.prefetchers.content = Some(ContentConfig {
        reinforcement: false,
        ..ContentConfig::tuned()
    });
    let nr = Simulator::new(nr_cfg).run(&w);
    let (s_reinf, s_nr) = (speedup(&base, &reinf), speedup(&base, &nr));
    assert!(
        s_reinf >= s_nr - 0.05,
        "reinforcement should help or tie: {s_reinf:.3} vs {s_nr:.3}"
    );
}

/// §3.5: page-walk traffic must bypass the scanner — otherwise page
/// tables (arrays of pointers) would explode the prefetcher.
#[test]
fn page_tables_never_reach_the_scanner() {
    use cdp::core::MemoryModel;
    use cdp::mem::AddressSpace;
    use cdp::sim::Hierarchy;
    use cdp::types::AccessKind;

    let mut space = AddressSpace::new();
    // One mapped line whose only word is a small integer.
    space.write_u32(VirtAddr(0x1000_0000), 7);
    let mut h = Hierarchy::new(SystemConfig::with_content(), &space);
    let t = h.access(0x40, VirtAddr(0x1000_0000), AccessKind::Load, 0);
    let _ = h.access(0x44, VirtAddr(0x1000_0000), AccessKind::Load, t + 10_000);
    // The walk filled two page-table lines into the L2, but only the
    // demand fill was scanned.
    assert!(h.stats().dtlb_misses >= 1);
    assert_eq!(h.content_stats().unwrap().fills_scanned, 1);
    assert_eq!(h.stats().content.issued, 0);
}

/// §5 / Figure 11: repartitioning UL2 capacity into a Markov STAB is a
/// losing trade on this suite.
#[test]
fn markov_repartitioning_loses_cache_capacity_value() {
    let w = Benchmark::Tpcc2.build(RunLength::Smoke.scale(), 31);
    let base = Simulator::new(SystemConfig::asplos2002()).run(&w);
    let half =
        Simulator::new(SystemConfig::with_markov(MarkovConfig::half(), 512 * 1024, 8)).run(&w);
    let content = Simulator::new(SystemConfig::with_content()).run(&w);
    assert!(
        speedup(&base, &content) > speedup(&base, &half),
        "content must beat markov_1/2"
    );
}

/// Table 2 shape: the workstation pointer chasers have the highest miss
/// rates; the cache-resident productivity codes the lowest.
#[test]
fn mptu_ordering_matches_table2_extremes() {
    let mptu = |b: Benchmark| {
        let w = b.build(RunLength::Smoke.scale(), 1);
        Simulator::new(SystemConfig::asplos2002()).run(&w).mptu()
    };
    let gate = mptu(Benchmark::VerilogGate);
    let b2e = mptu(Benchmark::B2e);
    let proe = mptu(Benchmark::ProE);
    // At smoke scale the mid-tier benchmarks compress together, but the
    // extremes of Table 2 must stay ordered.
    assert!(
        gate > 4.0 * b2e.max(0.1) && gate > proe,
        "gate {gate:.1} must dominate b2e {b2e:.1} / proE {proe:.1}"
    );
}
