//! Deterministic filesystem chaos soak (DESIGN.md §14).
//!
//! A seeded fault injector sits between the result store (and the
//! checkpoint writer) and the real filesystem, serving short writes,
//! out-of-space errors, failed renames, bit-flipped reads, and truncated
//! reads on a fixed schedule. Under any such schedule the contract is:
//! the sweep's *results* are byte-identical to a fault-free reference —
//! durability degrades, correctness never does — and a post-chaos
//! `fsck --repair` leaves the store clean.

use std::path::PathBuf;
use std::sync::Arc;

use cdp::sim::{CheckpointSpec, CheckpointStatus, JobObs, ObsSink, Pool, ResultCache, SimJob};
use cdp::store::{FaultConfig, FaultyIo, RealIo, ResultStore, StoreIo};
use cdp::types::{ObsConfig, SystemConfig};
use cdp::workloads::suite::Benchmark;
use cdp_testutil::tiny_workload;

/// A fresh per-test scratch directory (std-only; no tempfile crate in
/// this workspace). Cleared on entry so reruns start cold.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdp-store-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The sweep grid: a handful of distinct cells (benchmark × seed), each
/// with a distinct store key.
fn grid() -> Vec<(Benchmark, u64, u64)> {
    [
        Benchmark::Slsb,
        Benchmark::SpecjbbVsnet,
        Benchmark::Tpcc1,
        Benchmark::B2e,
        Benchmark::Quake,
        Benchmark::Slsb,
    ]
    .into_iter()
    .enumerate()
    .map(|(i, bench)| (bench, 42 + i as u64, 0x9e37_0000 + i as u64))
    .collect()
}

fn jobs_for(cfg: &SystemConfig, cache: Option<&Arc<ResultCache>>) -> Vec<SimJob> {
    grid()
        .into_iter()
        .map(|(bench, seed, key)| {
            let w = Arc::new(tiny_workload(bench, seed));
            let job = SimJob::new(format!("{bench:?}-{seed}"), cfg.clone(), w);
            match cache {
                Some(c) => job.with_result_cache(Arc::clone(c), key),
                None => job,
            }
        })
        .collect()
}

fn run_grid(pool: &Pool, cfg: &SystemConfig, cache: Option<&Arc<ResultCache>>) -> Vec<String> {
    pool.run_sims(jobs_for(cfg, cache))
        .into_iter()
        .map(|r| format!("{}: {:?}", r.label, r.stats))
        .collect()
}

/// The soak: the same grid under several fault seeds, at `--jobs 1` and
/// `--jobs 4`, must reproduce the fault-free reference exactly, and the
/// injector must actually have fired.
#[test]
fn chaos_sweep_is_byte_identical_to_fault_free_reference() {
    let cfg = SystemConfig::with_content();
    let reference = run_grid(&Pool::new(1), &cfg, None);
    for fault_seed in [1_u64, 0xc0ffee, 0xdead_beef] {
        for jobs in [1_usize, 4] {
            let dir = scratch(&format!("soak-{fault_seed:x}-j{jobs}"));
            let io = Arc::new(FaultyIo::new(RealIo, FaultConfig::aggressive(fault_seed)));
            let store = Arc::new(
                ResultStore::open_with(&dir, io.clone() as Arc<dyn StoreIo>)
                    .expect("store opens under fault injection"),
            );
            let cache = Arc::new(ResultCache::with_store(Arc::clone(&store)));
            let chaotic = run_grid(&Pool::new(jobs), &cfg, Some(&cache));
            assert_eq!(
                reference, chaotic,
                "results diverged under fault seed {fault_seed:#x} at {jobs} job(s)"
            );
            assert!(
                io.counts().total() > 0,
                "fault schedule {fault_seed:#x} never fired — soak is vacuous"
            );
            // Post-chaos: repair, then the store must scan clean.
            let clean = ResultStore::open(&dir).expect("reopen with real io");
            let report = clean.fsck(true).expect("repairing fsck");
            drop(report);
            let report = clean.fsck(false).expect("post-repair fsck");
            assert!(report.is_clean(), "store dirty after repair: {report:?}");
        }
    }
}

/// Fault-free persistence contract: a second process-equivalent sweep
/// over a warm store replays every cell from disk — zero store misses —
/// with results identical to the cold pass.
#[test]
fn warm_store_replays_every_cell_with_zero_misses() {
    let cfg = SystemConfig::with_content();
    let dir = scratch("warm");
    let reference = run_grid(&Pool::new(1), &cfg, None);

    let cold_store = Arc::new(ResultStore::open(&dir).expect("open cold"));
    let cache = Arc::new(ResultCache::with_store(Arc::clone(&cold_store)));
    let cold = run_grid(&Pool::new(4), &cfg, Some(&cache));
    assert_eq!(reference, cold);
    let s = cold_store.stats();
    assert_eq!(s.hits, 0, "cold store has nothing to replay");
    assert_eq!(s.misses, grid().len() as u64);
    assert_eq!(s.write_failures, 0, "fault-free cold pass persists all");
    drop(cache);
    drop(cold_store);

    let warm_store = Arc::new(ResultStore::open(&dir).expect("open warm"));
    let cache = Arc::new(ResultCache::with_store(Arc::clone(&warm_store)));
    let warm = run_grid(&Pool::new(4), &cfg, Some(&cache));
    assert_eq!(reference, warm, "warm replay diverged");
    let s = warm_store.stats();
    assert_eq!(s.misses, 0, "warm sweep must replay every cell from disk");
    assert_eq!(s.hits, grid().len() as u64);
    assert_eq!(s.quarantined, 0);
}

/// Chaos threads through checkpoint writes too: a checkpointed cell
/// whose checkpoint I/O is fully faulty still completes with reference
/// results, surfacing dropped checkpoint writes in the status counter
/// instead of failing the run.
#[test]
fn checkpointed_run_survives_faulty_checkpoint_io() {
    let cfg = {
        let mut c = SystemConfig::with_content();
        c.warmup_uops = 5_000;
        c
    };
    let w = Arc::new(tiny_workload(Benchmark::Slsb, 42));
    // Tight metrics windows give the run many step boundaries, so the
    // checkpoint cadence below actually produces writes to fault.
    let obs = ObsConfig {
        trace: None,
        metrics_window: Some(4_000),
        profile_hist: true,
    };
    let job_obs = |index: usize| JobObs {
        cfg: obs.clone(),
        sink: ObsSink::shared(),
        batch: 0,
        index,
    };
    let reference = SimJob::new("ref", cfg.clone(), Arc::clone(&w))
        .with_obs(job_obs(0))
        .try_execute()
        .expect("reference cell");

    for fault_seed in [3_u64, 0xfeed] {
        let dir = scratch(&format!("ckpt-{fault_seed:x}"));
        // Checkpoint writes happen only at step boundaries, so the
        // schedule is denser than the store soak's to guarantee fire.
        let faults = FaultConfig {
            seed: fault_seed,
            write_error_period: 2,
            write_short_period: 3,
            rename_error_period: 3,
            read_flip_period: 2,
            read_truncate_period: 3,
        };
        let io = Arc::new(FaultyIo::new(RealIo, faults));
        let status = CheckpointStatus::shared();
        let spec = CheckpointSpec {
            dir: dir.clone(),
            every: 1,
            key: 0xc0ffee,
            resume: true,
            status: Some(Arc::clone(&status)),
            io: Some(io.clone() as Arc<dyn StoreIo>),
        };
        let stats = SimJob::new("chaos", cfg.clone(), Arc::clone(&w))
            .with_obs(job_obs(1))
            .with_checkpoint(spec)
            .try_execute()
            .expect("checkpointed run under fault injection");
        assert_eq!(
            format!("{reference:?}"),
            format!("{stats:?}"),
            "checkpoint chaos (seed {fault_seed:#x}) changed results"
        );
        let counts = io.counts();
        assert!(
            counts.total() > 0,
            "fault schedule {fault_seed:#x} never fired"
        );
        // Every failed write or rename maps to exactly one surfaced
        // dropped-write (satellite 1: nothing is silently eaten); short
        // writes "succeed" and are caught at resume-read instead.
        assert_eq!(
            status.dropped_writes(),
            counts.write_errors + counts.rename_errors,
            "dropped checkpoint writes not surfaced in the status counter"
        );
    }
}

/// Killing a writer mid-publication leaves `.part` litter; the next open
/// (same dir, new process-equivalent) sweeps it and the store keeps
/// working.
#[test]
fn reopen_after_torn_write_recovers() {
    let dir = scratch("torn");
    // A schedule where every write is short: the publication rename then
    // publishes a torn file, which must be caught at read and recomputed.
    let cfg = FaultConfig {
        seed: 9,
        write_error_period: 0,
        write_short_period: 1,
        rename_error_period: 0,
        read_flip_period: 0,
        read_truncate_period: 0,
    };
    let io = Arc::new(FaultyIo::new(RealIo, cfg));
    let store =
        ResultStore::open_with(&dir, io as Arc<dyn StoreIo>).expect("open with torn writes");
    store.put(77, b"will be torn");
    assert_eq!(store.get(77), None, "torn entry must not replay");
    assert_eq!(store.stats().quarantined, 1);

    // New handle on the real filesystem: store still consistent.
    let store = ResultStore::open(&dir).expect("reopen");
    store.put(77, b"recomputed");
    assert_eq!(store.get(77).as_deref(), Some(&b"recomputed"[..]));
    let report = store.fsck(false).expect("fsck");
    assert!(report.is_clean(), "{report:?}");
}
