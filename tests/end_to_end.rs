//! Cross-crate integration tests: workload generation through the full
//! simulator, checking accounting invariants that no single crate can see
//! on its own.

use cdp::sim::{speedup, Simulator};
use cdp::types::{ContentConfig, SystemConfig};
use cdp::workloads::suite::Benchmark;
use cdp_testutil::smoke;

#[test]
fn every_benchmark_runs_to_completion_on_both_systems() {
    for b in Benchmark::all() {
        let w = b.build(smoke(), 11);
        let base = Simulator::new(SystemConfig::asplos2002()).run(&w);
        let cdp = Simulator::new(SystemConfig::with_content()).run(&w);
        assert_eq!(base.retired as usize, w.program.len(), "{b}");
        assert_eq!(cdp.retired, base.retired, "{b}: same trace both runs");
        assert!(base.cycles > 0 && cdp.cycles > 0, "{b}");
    }
}

#[test]
fn simulation_is_deterministic() {
    let w = Benchmark::Tpcc1.build(smoke(), 5);
    let a = Simulator::new(SystemConfig::with_content()).run(&w);
    let b = Simulator::new(SystemConfig::with_content()).run(&w);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mem.l2_demand_misses, b.mem.l2_demand_misses);
    assert_eq!(a.mem.content.issued, b.mem.content.issued);
}

#[test]
fn memory_accounting_invariants() {
    for b in [Benchmark::Slsb, Benchmark::B2e, Benchmark::Quake] {
        let w = b.build(smoke(), 3);
        let r = Simulator::new(SystemConfig::with_content()).run(&w);
        let m = r.mem;
        // Every access is an L1 hit or miss.
        assert_eq!(m.accesses, m.l1_hits + m.l1_misses, "{b}");
        // Every L1 miss reaches the L2.
        assert_eq!(m.l1_misses, m.l2_demand_accesses, "{b}");
        // L2 outcomes partition into hit / merged / miss.
        assert_eq!(
            m.l2_demand_accesses,
            m.l2_demand_hits + m.l2_miss_merged + m.l2_demand_misses,
            "{b}"
        );
        // Loads+stores executed by the core equal hierarchy accesses.
        assert_eq!(r.core.loads + r.core.stores, m.accesses, "{b}");
        // Useful prefetches can never exceed issued ones within a window
        // that starts empty (no warm-up here).
        assert!(m.content.useful() <= m.content.issued, "{b}");
        // Figure 10 classification covers exactly the would-miss demands.
        assert_eq!(
            m.distribution.total(),
            m.distribution.stride_full
                + m.distribution.stride_partial
                + m.distribution.cpf_full
                + m.distribution.cpf_partial
                + m.distribution.markov_full
                + m.distribution.markov_partial
                + m.distribution.unmasked_misses,
            "{b}"
        );
        assert_eq!(m.distribution.unmasked_misses, m.l2_demand_misses, "{b}");
    }
}

#[test]
fn warmup_only_shrinks_counted_window() {
    let w = Benchmark::Speech.build(smoke(), 9);
    let full = Simulator::new(SystemConfig::asplos2002()).run(&w);
    let mut cfg = SystemConfig::asplos2002();
    cfg.warmup_uops = (w.program.len() / 3) as u64;
    let warmed = Simulator::new(cfg).run(&w);
    assert!(warmed.retired < full.retired);
    assert!(warmed.cycles < full.cycles);
    assert!(warmed.mem.l2_demand_misses <= full.mem.l2_demand_misses);
}

#[test]
fn content_prefetcher_helps_aged_heap_pointer_chasing() {
    let w = Benchmark::Slsb.build(smoke(), 18);
    let base = Simulator::new(SystemConfig::asplos2002()).run(&w);
    let cdp = Simulator::new(SystemConfig::with_content()).run(&w);
    let s = speedup(&base, &cdp);
    assert!(s > 1.0, "CDP must win on slsb: {s:.3}");
    assert!(cdp.mem.content.useful() > 0);
}

#[test]
fn disabling_all_prefetchers_is_never_faster_than_stride_baseline() {
    let w = Benchmark::Quake.build(smoke(), 2);
    let mut none_cfg = SystemConfig::asplos2002();
    none_cfg.prefetchers.stride = None;
    let none = Simulator::new(none_cfg).run(&w);
    let stride = Simulator::new(SystemConfig::asplos2002()).run(&w);
    assert!(
        stride.cycles <= none.cycles + none.cycles / 20,
        "stride must not hurt a stride workload: {} vs {}",
        stride.cycles,
        none.cycles
    );
}

#[test]
fn bigger_l2_never_increases_misses() {
    let w = Benchmark::Tpcc2.build(smoke(), 8);
    let small = Simulator::new(SystemConfig::asplos2002()).run(&w);
    let mut big_cfg = SystemConfig::asplos2002();
    big_cfg.ul2.size_bytes = 4 * 1024 * 1024;
    let big = Simulator::new(big_cfg).run(&w);
    assert!(
        big.mem.l2_demand_misses <= small.mem.l2_demand_misses + small.mem.l2_demand_misses / 10,
        "4MB {} vs 1MB {}",
        big.mem.l2_demand_misses,
        small.mem.l2_demand_misses
    );
}

#[test]
fn depth_threshold_zero_disables_chaining() {
    let w = Benchmark::Slsb.build(smoke(), 4);
    let mut cfg = SystemConfig::asplos2002();
    cfg.prefetchers.content = Some(ContentConfig {
        depth_threshold: 0,
        ..ContentConfig::tuned()
    });
    let r = Simulator::new(cfg).run(&w);
    assert_eq!(
        r.mem.content.issued, 0,
        "threshold 0 means even demand fills are not scanned"
    );
}

#[test]
fn serialized_workload_simulates_identically() {
    use cdp::workloads::serialize::{from_text, to_text};
    let original = Benchmark::Creation.build(smoke(), 14);
    let reloaded = from_text(&to_text(&original)).expect("roundtrip");
    let a = Simulator::new(SystemConfig::with_content()).run(&original);
    let b = Simulator::new(SystemConfig::with_content()).run(&reloaded);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mem.l2_demand_misses, b.mem.l2_demand_misses);
    assert_eq!(a.mem.content.issued, b.mem.content.issued);
}

#[test]
fn page_walks_happen_and_tlb_growth_reduces_them() {
    let w = Benchmark::VerilogFunc.build(smoke(), 1);
    let small = Simulator::new(SystemConfig::asplos2002()).run(&w);
    let mut big_cfg = SystemConfig::asplos2002();
    big_cfg.dtlb.entries = 1024;
    let big = Simulator::new(big_cfg).run(&w);
    assert!(small.mem.dtlb_misses > 0);
    assert!(
        big.mem.dtlb_misses < small.mem.dtlb_misses,
        "16x TLB must cut walks: {} vs {}",
        big.mem.dtlb_misses,
        small.mem.dtlb_misses
    );
}
