//! Concurrency contract of the sharded [`ResultCache`] (DESIGN.md §8):
//!
//! * raw `get`/`put` from 8 threads with stripe-colliding fingerprints
//!   never lose or cross-wire an entry;
//! * hit/miss counters are exact — every job is counted exactly once,
//!   no matter how the threads interleave;
//! * a cache hit replays bit-identical `RunStats` and, for observed
//!   jobs, a bit-identical `Observation` into the sink.

use std::sync::Arc;

use cdp::sim::{JobObs, ObsSink, Pool, ResultCache, SimJob, WorkloadCache, CACHE_STRIPES};
use cdp::types::{ObsConfig, SystemConfig};
use cdp::workloads::suite::Benchmark;
use cdp_testutil::{default_workload, tiny_workload};

/// Eight threads hammer raw get/put with keys deliberately congruent
/// modulo the stripe count (maximal lock collisions) plus spread keys.
/// Every inserted entry must come back from the stripe it hashed to,
/// with the exact value stored under that key.
#[test]
fn colliding_fingerprints_never_lose_or_cross_wire_entries() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 64;
    let cache = Arc::new(ResultCache::new());
    let w = Arc::new(default_workload());
    // One real template result to clone (contents don't matter — identity
    // per key is established via the distinguishable `cycles` field).
    let template = SimJob::new("tpl", SystemConfig::asplos2002(), Arc::clone(&w))
        .try_execute()
        .expect("template run");
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Half the keys share one stripe (low bits fixed to
                    // t % STRIPES), half spread; all globally unique.
                    let key = if i % 2 == 0 {
                        (t % CACHE_STRIPES as u64) | ((t * PER_THREAD + i) << 8)
                    } else {
                        (t * PER_THREAD + i) << 4 | t
                    };
                    let mut stats = template;
                    stats.cycles = key; // distinguishable payload
                    cache.put(key, stats, None);
                    let (got, obs) = cache.get(key).expect("just inserted");
                    assert_eq!(got.cycles, key, "entry cross-wired between keys");
                    assert!(obs.is_none());
                }
            });
        }
    });
    assert_eq!(cache.len(), (THREADS * PER_THREAD) as usize, "no entry lost");
}

/// 8 identical jobs race on one fingerprint through a real pool: the
/// counters must account for every job exactly once (hits + misses = 8),
/// at least one job must have simulated, and every job must report the
/// same stats. A second wave is then all hits.
#[test]
fn racing_jobs_on_one_key_count_exactly_and_replay_identically() {
    let cache = Arc::new(ResultCache::new());
    let w = Arc::new(default_workload());
    let key = 0xfeed_beef_u64;
    let build_jobs = || -> Vec<SimJob> {
        (0..8)
            .map(|i| {
                SimJob::new(
                    format!("cell-{i}"),
                    SystemConfig::with_content(),
                    Arc::clone(&w),
                )
                .with_result_cache(Arc::clone(&cache), key)
            })
            .collect()
    };
    let pool = Pool::new(8);
    let first = pool.run_sims(build_jobs());
    assert_eq!(
        cache.hits() + cache.misses(),
        8,
        "every job counted exactly once"
    );
    assert!(cache.misses() >= 1, "someone simulated");
    assert_eq!(cache.len(), 1, "one distinct cell");
    for r in &first {
        assert_eq!(r.stats.cycles, first[0].stats.cycles, "replayed stats identical");
        assert_eq!(r.stats.retired, first[0].stats.retired);
    }
    let (h0, m0) = (cache.hits(), cache.misses());
    let second = pool.run_sims(build_jobs());
    assert_eq!(cache.hits(), h0 + 8, "second wave is all hits");
    assert_eq!(cache.misses(), m0, "second wave simulated nothing");
    assert_eq!(second[0].stats.cycles, first[0].stats.cycles);
}

/// Observed jobs racing on one key: whoever misses records the
/// observation; every hit replays an identical copy into the sink.
#[test]
fn observed_hits_replay_identical_observations() {
    let cache = Arc::new(ResultCache::new());
    let sink = ObsSink::shared();
    let w = Arc::new(default_workload());
    let key = 0xcafe_f00d_u64;
    let obs_cfg = ObsConfig {
        trace: None,
        metrics_window: Some(16_384),
        profile_hist: true,
    };
    let jobs: Vec<SimJob> = (0..8)
        .map(|i| {
            SimJob::new(format!("obs-{i}"), SystemConfig::with_content(), Arc::clone(&w))
                .with_result_cache(Arc::clone(&cache), key)
                .with_obs(JobObs {
                    cfg: obs_cfg.clone(),
                    sink: Arc::clone(&sink),
                    batch: 0,
                    index: i,
                })
        })
        .collect();
    Pool::new(8).run_sims(jobs);
    let entries = sink.drain_sorted();
    assert_eq!(entries.len(), 8, "every observed job delivered");
    let reference = &entries[0].observation;
    for e in &entries {
        assert_eq!(
            e.observation.windows.len(),
            reference.windows.len(),
            "replayed observation differs in window count"
        );
        for (a, b) in e.observation.windows.iter().zip(reference.windows.iter()) {
            assert_eq!(a.retired, b.retired, "windows diverge");
            assert_eq!(a.cycles, b.cycles, "windows diverge");
        }
    }
    assert_eq!(cache.hits() + cache.misses(), 8);
}

/// The sharded workload cache still builds each image once per key and
/// shares it by Arc under cross-benchmark concurrency.
#[test]
fn workload_cache_shards_share_images() {
    let cache = Arc::new(WorkloadCache::new());
    let benches = [
        Benchmark::B2b,
        Benchmark::B2e,
        Benchmark::Quake,
        Benchmark::Rc3,
        Benchmark::Tpcc1,
        Benchmark::Slsb,
        Benchmark::ProE,
        Benchmark::SpecjbbVsnet,
    ];
    std::thread::scope(|s| {
        for &b in &benches {
            let cache = Arc::clone(&cache);
            s.spawn(move || {
                let scale = cdp_testutil::smoke();
                let first = cache.get_with(b, scale, || tiny_workload(b, 7));
                let again = cache.get_with(b, scale, || tiny_workload(b, 7));
                assert!(Arc::ptr_eq(&first, &again), "image rebuilt despite cache");
            });
        }
    });
    assert_eq!(cache.len(), benches.len());
}
